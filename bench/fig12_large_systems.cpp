// Fig 12: performance on "large" systems — the paper's weak-scaling table
// from 1,024 to 32,768 nodes (GTEPS 173..3107 for RMAT-1, 70..1480 for
// RMAT-2). Here: the largest rank counts this harness runs, with the final
// algorithm of each family (LB-OPT-25 for RMAT-1 incl. vertex splitting at
// the top size, OPT-40 for RMAT-2).
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"
#include "graph/vertex_split.hpp"

int main() {
  using namespace parsssp;

  const std::vector<rank_t> rank_counts{4, 8, 16, 32, 64};
  const std::uint32_t log2_per_rank = 9;

  TextTable t("Fig 12: GTEPS(model), weak scaling, 2^9 vertices/rank");
  std::vector<std::string> header{"family"};
  for (const auto r : rank_counts) header.push_back(std::to_string(r) + "r");
  t.set_header(header);

  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    const bool rmat1 = family == RmatFamily::kRmat1;
    std::vector<std::string> row{std::string(family_name(family)) +
                                 (rmat1 ? " LB-OPT-25" : " OPT-40")};
    for (const rank_t ranks : rank_counts) {
      std::uint32_t log2_ranks = 0;
      while ((rank_t{1} << log2_ranks) < ranks) ++log2_ranks;
      const std::uint32_t scale = log2_per_rank + log2_ranks;

      EdgeList edges = generate_rmat(family_config(family, scale));
      CsrGraph g = CsrGraph::from_edges(edges);
      vid_t root_hint = sample_roots(g, 1, 1).at(0);

      SsspOptions options =
          rmat1 ? SsspOptions::lb_opt(25, 64) : SsspOptions::opt(40);

      // RMAT-1 at the largest sizes additionally gets the inter-node
      // vertex-splitting treatment (paper §IV-F).
      SplitResult split;
      const bool use_split = rmat1 && ranks >= 32;
      if (use_split) {
        SplitConfig sc;
        sc.degree_threshold = 256;
        split = split_heavy_vertices(edges, g, sc);
        g = CsrGraph::from_edges(split.graph);
        root_hint = split.orig_to_new[root_hint];
      }

      Solver solver(g, {.machine = {.num_ranks = ranks,
                                    .lanes_per_rank = 4}});
      const std::vector<vid_t> roots{root_hint};
      const RunSummary s = run_roots(solver, options, roots);
      row.push_back(TextTable::num(s.mean_model_gteps, 4));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\npaper (1024..32768 nodes): RMAT-1: 173 331 653 1102 1870 "
               "3107; RMAT-2: 70 129 244 460 840 1480\n";
  print_paper_note(std::cout,
                   "both families scale near-linearly with system size; "
                   "RMAT-1 sustains roughly 2x RMAT-2's rate");
  return 0;
}
