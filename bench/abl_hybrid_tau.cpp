// Ablation (§III-D): the hybridization threshold tau. The paper fixes
// tau = 0.4 ("a good choice"). This bench sweeps tau from 0 (switch to
// Bellman-Ford immediately) to disabled, showing the trade-off between
// bucket overhead (high tau) and extra Bellman-Ford work (low tau).
#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace parsssp;

  for (const RmatFamily family : {RmatFamily::kRmat1, RmatFamily::kRmat2}) {
    const CsrGraph g = build_rmat_graph(family, 13);
    Solver solver(g, {.machine = {.num_ranks = 8}});
    const auto roots = sample_roots(g, 4, 5);

    TextTable t(std::string("hybrid tau sweep, ") + family_name(family) +
                " scale 13, Prune-25 base");
    t.set_header({"tau", "buckets", "phases", "relaxations", "model-ms",
                  "GTEPS(model)"});
    for (const double tau : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, -1.0}) {
      SsspOptions o = SsspOptions::opt(25);
      o.hybrid_tau = tau;
      const RunSummary s = run_roots(solver, o, roots);
      t.add_row({tau < 0 ? "off" : TextTable::num(tau, 1),
                 TextTable::num(s.mean_buckets, 1),
                 TextTable::num(s.mean_phases, 1),
                 TextTable::num(s.mean_relaxations, 0),
                 TextTable::num(s.mean_model_time_s * 1e3, 3),
                 TextTable::num(s.mean_model_gteps, 4)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  print_paper_note(std::cout,
                   "small tau inflates Bellman-Ford work, large tau keeps "
                   "the long bucket tail; intermediate tau (~0.4) balances "
                   "both (paper's recommended setting)");
  return 0;
}
