// Solver::solve_batch (Graph 500 multi-root methodology) and Dial's
// bucket-array Dijkstra.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "seq/dial.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph(std::uint32_t scale, std::uint64_t seed = 1) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

TEST(SolveBatch, AggregatesOverRoots) {
  const auto g = rmat_graph(9);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const auto roots = sample_roots(g, 5, 1);
  const BatchSummary s = solver.solve_batch(roots, SsspOptions::opt(25));
  EXPECT_EQ(s.num_roots, 5u);
  EXPECT_EQ(s.per_root.size(), 5u);
  EXPECT_EQ(s.edges, g.num_undirected_edges());
  EXPECT_GT(s.harmonic_mean_gteps, 0.0);
  EXPECT_LE(s.min_gteps, s.harmonic_mean_gteps);
  EXPECT_LE(s.harmonic_mean_gteps, s.mean_gteps + 1e-12);
  EXPECT_LE(s.mean_gteps, s.max_gteps);
}

TEST(SolveBatch, EmptyRoots) {
  const auto g = rmat_graph(8);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const BatchSummary s = solver.solve_batch({}, SsspOptions::opt(25));
  EXPECT_EQ(s.num_roots, 0u);
  EXPECT_EQ(s.harmonic_mean_gteps, 0.0);
}

TEST(SolveBatch, SingleRootMatchesSolve) {
  const auto g = rmat_graph(8);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const vid_t root = sample_roots(g, 1, 1).at(0);
  const std::vector<vid_t> roots{root};
  const BatchSummary s = solver.solve_batch(roots, SsspOptions::del(25));
  const SsspResult r = solver.solve(root, SsspOptions::del(25));
  EXPECT_EQ(s.per_root[0].total_relaxations(),
            r.stats.total_relaxations());
  EXPECT_DOUBLE_EQ(s.mean_gteps, s.max_gteps);
}

TEST(Dial, MatchesDijkstraOnRmat) {
  for (const std::uint64_t seed : {1ULL, 4ULL}) {
    const auto g = rmat_graph(9, seed);
    for (const vid_t root : sample_roots(g, 2, seed)) {
      EXPECT_EQ(dial(g, root).dist, dijkstra_distances(g, root))
          << "seed=" << seed << " root=" << root;
    }
  }
}

TEST(Dial, ZeroWeightEdges) {
  EdgeList list;
  list.add_edge(0, 1, 0);
  list.add_edge(1, 2, 5);
  list.add_edge(2, 3, 0);
  const auto g = CsrGraph::from_edges(list);
  EXPECT_EQ(dial(g, 0).dist, (std::vector<dist_t>{0, 0, 5, 5}));
}

TEST(Dial, BucketCountEqualsDistinctDistances) {
  EdgeList list;
  list.add_edge(0, 1, 2);
  list.add_edge(1, 2, 2);
  list.add_edge(0, 2, 10);
  const auto g = CsrGraph::from_edges(list);
  const auto r = dial(g, 0);
  // Distinct distances: 0, 2, 4 -> 3 non-empty buckets.
  EXPECT_EQ(r.buckets, 3u);
}

TEST(Dial, DisconnectedAndOutOfRange) {
  EdgeList list(4);
  list.add_edge(0, 1, 1);
  const auto g = CsrGraph::from_edges(list);
  EXPECT_EQ(dial(g, 0).dist[3], kInfDist);
  const auto r = dial(g, 99);
  for (const auto d : r.dist) EXPECT_EQ(d, kInfDist);
}

}  // namespace
}  // namespace parsssp
