// The counters behind the paper's figures: relaxations by kind, phases,
// buckets, hybrid switching, pull decisions, time breakdown, details.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "seq/bellman_ford.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph(std::uint32_t scale, std::uint64_t seed = 1) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

TEST(EngineStats, DijkstraRelaxesReachedEdgesOncePerDirection) {
  // On a connected graph, Dijkstra (Delta=1) relaxes each edge twice.
  EdgeList list;
  for (vid_t i = 0; i < 30; ++i) list.add_edge(i, (i + 1) % 31, 2 + i % 9);
  for (vid_t i = 0; i < 15; ++i) list.add_edge(i, i + 16, 3 + i % 7);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 3}});
  const auto r = solver.solve(0, SsspOptions::dijkstra());
  EXPECT_EQ(r.stats.total_relaxations(), 2 * g.num_undirected_edges());
  EXPECT_EQ(r.dist, dijkstra_distances(g, 0));
}

TEST(EngineStats, BellmanFordSingleBucket) {
  const auto g = rmat_graph(8);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::bellman_ford());
  EXPECT_EQ(r.stats.buckets, 1u);
  EXPECT_GT(r.stats.bf_relaxations, 0u);
  EXPECT_EQ(r.stats.short_relaxations, 0u);
  EXPECT_EQ(r.stats.long_push_relaxations, 0u);
}

TEST(EngineStats, BellmanFordComparableToSequential) {
  // The engine is bulk-synchronous: improvements cannot chain within a
  // round the way they do in the sequential sweep, so the distributed BF
  // needs at least as many rounds/relaxations — but the same distances.
  const auto g = rmat_graph(8, 5);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const auto r = solver.solve(0, SsspOptions::bellman_ford());
  const auto seq = bellman_ford(g, 0);
  EXPECT_EQ(r.dist, seq.dist);
  EXPECT_GE(r.stats.phases, seq.phases);
  EXPECT_GE(r.stats.bf_relaxations, seq.relaxations);
  // And it cannot be wildly worse: within 2x on this graph.
  EXPECT_LE(r.stats.bf_relaxations, 2 * seq.relaxations);
}

TEST(EngineStats, PhaseOrderingAcrossAlgorithms) {
  // Fig 3(a): phases(BF) <= phases(OPT) <= phases(Del) <= phases(Dijkstra).
  const auto g = rmat_graph(10, 3);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const auto bf = solver.solve(0, SsspOptions::bellman_ford()).stats;
  const auto opt = solver.solve(0, SsspOptions::opt(25)).stats;
  const auto del = solver.solve(0, SsspOptions::del(25)).stats;
  const auto dij = solver.solve(0, SsspOptions::dijkstra()).stats;
  EXPECT_LE(bf.phases, opt.phases);
  EXPECT_LE(opt.phases, del.phases);
  EXPECT_LE(del.buckets, dij.buckets);
}

TEST(EngineStats, PruningReducesRelaxations) {
  // Fig 3(b): Prune-25 does significantly less work than Del-25 on skewed
  // R-MAT graphs.
  const auto g = rmat_graph(11, 7);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const auto del = solver.solve(0, SsspOptions::del(25)).stats;
  const auto prune = solver.solve(0, SsspOptions::prune(25)).stats;
  EXPECT_LT(prune.total_relaxations(), del.total_relaxations());
}

TEST(EngineStats, HybridizationReducesBuckets) {
  // Fig 10(d): Del-25 needs many buckets; OPT-25 converges in a handful.
  const auto g = rmat_graph(10, 9);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const auto del = solver.solve(0, SsspOptions::del(25)).stats;
  const auto opt = solver.solve(0, SsspOptions::opt(25)).stats;
  EXPECT_LT(opt.buckets, del.buckets);
  EXPECT_TRUE(opt.switched_to_bf);
  EXPECT_GT(opt.bf_relaxations, 0u);
}

TEST(EngineStats, NoHybridSwitchWhenDisabled) {
  const auto g = rmat_graph(9);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::prune(25));
  EXPECT_FALSE(r.stats.switched_to_bf);
  EXPECT_EQ(r.stats.bf_relaxations, 0u);
}

TEST(EngineStats, IosReducesShortRelaxations) {
  // §III-A: IOS cuts short-edge relaxations (about 10% on benchmark
  // graphs); it must never increase them.
  const auto g = rmat_graph(10, 11);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions with_ios = SsspOptions::prune(25);
  with_ios.prune_mode = PruneMode::kPushOnly;
  SsspOptions without = with_ios;
  without.ios = false;
  const auto a = solver.solve(0, with_ios).stats;
  const auto b = solver.solve(0, without).stats;
  EXPECT_LT(a.short_relaxations, b.short_relaxations);
}

TEST(EngineStats, PullDecisionsRecordedPerBucket) {
  const auto g = rmat_graph(9, 13);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::prune(25));
  // One decision per processed (non-BF) bucket.
  EXPECT_EQ(r.stats.pull_decisions.size(), r.stats.buckets);
}

TEST(EngineStats, PullOnlyUsesRequestsAndResponses) {
  const auto g = rmat_graph(9, 13);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions o = SsspOptions::prune(25);
  o.prune_mode = PruneMode::kPullOnly;
  const auto r = solver.solve(0, o).stats;
  EXPECT_GT(r.pull_requests, 0u);
  EXPECT_GT(r.pull_responses, 0u);
  EXPECT_LE(r.pull_responses, r.pull_requests);
  EXPECT_EQ(r.long_push_relaxations, 0u);
}

TEST(EngineStats, PushOnlyNeverPulls) {
  const auto g = rmat_graph(9, 13);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions o = SsspOptions::prune(25);
  o.prune_mode = PruneMode::kPushOnly;
  const auto r = solver.solve(0, o).stats;
  EXPECT_EQ(r.pull_requests, 0u);
  EXPECT_EQ(r.pull_responses, 0u);
  EXPECT_GT(r.long_push_relaxations, 0u);
  for (const bool pull : r.pull_decisions) EXPECT_FALSE(pull);
}

TEST(EngineStats, PhaseDetailsSumToTotals) {
  const auto g = rmat_graph(9, 17);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions o = SsspOptions::opt(25);
  o.collect_phase_details = true;
  const auto r = solver.solve(0, o);
  ASSERT_FALSE(r.stats.phase_details.empty());
  std::uint64_t sum = 0;
  for (const auto& p : r.stats.phase_details) sum += p.relaxations;
  EXPECT_EQ(sum, r.stats.total_relaxations());
  EXPECT_EQ(r.stats.phase_details.size(), r.stats.phases);
}

TEST(EngineStats, BucketDetailsCategoriesCoverLongPushes) {
  const auto g = rmat_graph(9, 19);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions o = SsspOptions::del(25);
  o.collect_bucket_details = true;
  const auto r = solver.solve(0, o);
  ASSERT_FALSE(r.stats.bucket_details.empty());
  std::uint64_t categorized = 0;
  for (const auto& b : r.stats.bucket_details) {
    categorized += b.self_edges + b.backward_edges + b.forward_edges;
    EXPECT_FALSE(b.used_pull);
  }
  EXPECT_EQ(categorized, r.stats.long_push_relaxations);
}

TEST(EngineStats, ModeledTimePositiveAndDecomposed) {
  const auto g = rmat_graph(9);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::del(25)).stats;
  EXPECT_GT(r.model_time_s, 0.0);
  EXPECT_NEAR(r.model_time_s, r.model_bucket_time_s + r.model_other_time_s,
              1e-12);
  EXPECT_GT(r.wall_time_s, 0.0);
}

TEST(EngineStats, GtepsComputed) {
  const auto g = rmat_graph(9);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::opt(25)).stats;
  EXPECT_GT(r.gteps(g.num_undirected_edges(), true), 0.0);
  EXPECT_GT(r.gteps(g.num_undirected_edges(), false), 0.0);
}

TEST(EngineStats, TrafficAccountedByPhaseKind) {
  const auto g = rmat_graph(9, 21);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  SsspOptions o = SsspOptions::prune(25);
  o.prune_mode = PruneMode::kPullOnly;
  // Use a well-connected root: an isolated root would produce requests but
  // never any responses.
  const vid_t root = sample_roots(g, 1, 1).at(0);
  solver.solve(root, o);
  const TrafficCounters t = solver.machine().traffic().merged();
  EXPECT_GT(t.messages[static_cast<std::size_t>(PhaseKind::kPullRequest)], 0u);
  EXPECT_GT(t.messages[static_cast<std::size_t>(PhaseKind::kPullResponse)],
            0u);
  EXPECT_GT(t.messages[static_cast<std::size_t>(PhaseKind::kControl)], 0u);
  EXPECT_EQ(t.messages[static_cast<std::size_t>(PhaseKind::kLongPush)], 0u);
}

TEST(EngineStats, HeuristicCostNotWorseThanBothFixedModes) {
  // The decision heuristic should land at or below the max of push-only /
  // pull-only total relaxations (it optimizes per bucket).
  const auto g = rmat_graph(10, 23);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  SsspOptions push = SsspOptions::prune(25);
  push.prune_mode = PruneMode::kPushOnly;
  SsspOptions pull = SsspOptions::prune(25);
  pull.prune_mode = PruneMode::kPullOnly;
  SsspOptions heur = SsspOptions::prune(25);
  const auto rp = solver.solve(0, push).stats.total_relaxations();
  const auto rq = solver.solve(0, pull).stats.total_relaxations();
  const auto rh = solver.solve(0, heur).stats.total_relaxations();
  EXPECT_LE(rh, std::max(rp, rq));
}

}  // namespace
}  // namespace parsssp
