// Wall-clock accounting of the engines, certified through the trace
// self-check: per-lane top-level spans must tile each solve, the
// kBucketScan subset must match the reported BktTime, and the
// BktTime/OtherTime split must stay a partition of the wall clock. The
// forced-hybrid cases are the regression tests for the switch bug where
// bellman_ford_tail() ran inside the BktTime stopwatch, double-counting
// the tail and driving OtherTime negative.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/options.hpp"
#include "core/solver.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "obs/trace.hpp"

namespace parsssp {
namespace {

CsrGraph test_graph(std::uint32_t scale, std::uint64_t seed) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 12;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

void expect_wall_partition(const SsspStats& s) {
  EXPECT_GE(s.wall_bucket_time_s, 0.0);
  EXPECT_GE(s.wall_other_time_s, 0.0)
      << "OtherTime went negative: BktTime " << s.wall_bucket_time_s
      << "s of wall " << s.wall_time_s << "s";
  EXPECT_NEAR(s.wall_bucket_time_s + s.wall_other_time_s, s.wall_time_s,
              1e-9 + 1e-12 * std::abs(s.wall_time_s));
}

TEST(Instrumentation, WallTimePartitionsAcrossVariants) {
  const CsrGraph g = test_graph(/*scale=*/10, /*seed=*/3);
  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});
  for (const SsspOptions& opts :
       {SsspOptions::del(25), SsspOptions::prune(25), SsspOptions::opt(25),
        SsspOptions::bellman_ford()}) {
    const SsspResult r = solver.solve(1, opts);
    expect_wall_partition(r.stats);
  }
}

// tau = 0.05 forces the Bellman-Ford switch after the first epoch on this
// graph. Before the fix, the tail's whole wall time was charged to BktTime
// on top of its own timed sections, so OtherTime = wall - BktTime could go
// negative and the span sum could exceed the solve span.
TEST(Instrumentation, ForcedHybridSwitchKeepsOtherTimeNonNegative) {
  const CsrGraph g = test_graph(/*scale=*/11, /*seed=*/7);
  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});
  SsspOptions opts = SsspOptions::opt(25);
  opts.hybrid_tau = 0.05;
  const SsspResult r = solver.solve(0, opts);
  ASSERT_TRUE(r.stats.switched_to_bf) << "test graph must trigger the tail";
  expect_wall_partition(r.stats);
}

TEST(Instrumentation, TraceSelfCheckPassesAcrossVariants) {
  const CsrGraph g = test_graph(/*scale=*/11, /*seed=*/5);
  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});
  TraceRecorder recorder;
  for (const SsspOptions& base :
       {SsspOptions::del(25), SsspOptions::prune(25), SsspOptions::opt(25),
        SsspOptions::bellman_ford()}) {
    SsspOptions opts = base;
    opts.trace = &recorder;
    recorder.clear();
    const SsspResult r = solver.solve(2, opts);
    const TraceCheckReport rep = check_engine_accounting(recorder, r.stats);
    EXPECT_TRUE(rep.ok) << rep.detail;
    EXPECT_EQ(rep.dropped, 0u);
    EXPECT_GT(rep.span_wall_s, 0.0);
  }
}

TEST(Instrumentation, TraceSelfCheckPassesThroughTheForcedSwitch) {
  const CsrGraph g = test_graph(/*scale=*/11, /*seed=*/7);
  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});
  TraceRecorder recorder;
  SsspOptions opts = SsspOptions::opt(25);
  opts.hybrid_tau = 0.05;
  opts.trace = &recorder;
  const SsspResult r = solver.solve(0, opts);
  ASSERT_TRUE(r.stats.switched_to_bf);
  const TraceCheckReport rep = check_engine_accounting(recorder, r.stats);
  EXPECT_TRUE(rep.ok) << rep.detail;
  // The tail's rounds must be visible as kBellmanFord spans, not silently
  // folded into BktTime.
  bool saw_bf_span = false;
  for (const auto& lane : recorder.snapshot()) {
    for (const TraceSpan& s : lane.spans) {
      saw_bf_span = saw_bf_span || s.cat == SpanCat::kBellmanFord;
    }
  }
  EXPECT_TRUE(saw_bf_span);
}

TEST(Instrumentation, TracingDoesNotChangeResults) {
  const CsrGraph g = test_graph(/*scale=*/10, /*seed=*/11);
  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});
  const SsspOptions plain = SsspOptions::opt(25);
  const SsspResult untraced = solver.solve(3, plain);

  TraceRecorder recorder;
  SsspOptions traced_opts = plain;
  traced_opts.trace = &recorder;
  const SsspResult traced = solver.solve(3, traced_opts);

  ASSERT_EQ(traced.dist.size(), untraced.dist.size());
  for (vid_t v = 0; v < untraced.dist.size(); ++v) {
    ASSERT_EQ(traced.dist[v], untraced.dist[v]);
  }
  EXPECT_EQ(traced.stats.total_relaxations(),
            untraced.stats.total_relaxations());
  EXPECT_EQ(traced.stats.phases, untraced.stats.phases);
}

TEST(Instrumentation, NoSpansRecordedWhenTraceIsOff) {
  const CsrGraph g = test_graph(/*scale=*/9, /*seed=*/1);
  Solver solver(g, {.machine = {.num_ranks = 2, .lanes_per_rank = 2}});
  TraceRecorder recorder;  // exists but is not wired into the options
  const SsspResult r = solver.solve(0, SsspOptions::opt(25));
  expect_wall_partition(r.stats);
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_EQ(recorder.total_dropped(), 0u);
}

}  // namespace
}  // namespace parsssp
