// Exhaustive field coverage for options_signature() (src/serve/
// result_cache.cpp). The result cache keys on the signature, so any
// SsspOptions field that changes results but not the signature silently
// serves wrong cached answers. One mutator per field below; the analyzer's
// A2 check (scripts/analysis/) guarantees the *list* of fields is complete
// against the struct, this test guarantees each serialization actually
// distinguishes values — pairwise, not just against the default.
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/options.hpp"
#include "obs/trace.hpp"
#include "serve/result_cache.hpp"

namespace parsssp {
namespace {

struct FieldMutation {
  const char* name;
  std::function<void(SsspOptions&)> apply;
};

// Every non-excluded SsspOptions field (including the nested
// CostModelParams), each set to a value distinct from the default.
const std::vector<FieldMutation>& mutations() {
  static const std::vector<FieldMutation> kMutations = {
      {"delta", [](SsspOptions& o) { o.delta = 7; }},
      {"algo", [](SsspOptions& o) { o.algo = SsspAlgo::kAsync; }},
      {"edge_classification",
       [](SsspOptions& o) { o.edge_classification = false; }},
      {"ios", [](SsspOptions& o) { o.ios = false; }},
      {"pruning", [](SsspOptions& o) { o.pruning = false; }},
      {"prune_mode",
       [](SsspOptions& o) { o.prune_mode = PruneMode::kPullOnly; }},
      {"forced_pull", [](SsspOptions& o) { o.forced_pull = {true, false}; }},
      {"estimator",
       [](SsspOptions& o) { o.estimator = EstimatorKind::kHistogram; }},
      {"load_lambda", [](SsspOptions& o) { o.load_lambda = 2.5; }},
      {"hybrid_tau", [](SsspOptions& o) { o.hybrid_tau = 0.4; }},
      {"heavy_degree_threshold",
       [](SsspOptions& o) { o.heavy_degree_threshold = 64; }},
      {"rho", [](SsspOptions& o) { o.rho = 999; }},
      {"radius_k", [](SsspOptions& o) { o.radius_k = 17; }},
      {"track_parents", [](SsspOptions& o) { o.track_parents = true; }},
      {"canonical_parents",
       [](SsspOptions& o) { o.canonical_parents = true; }},
      {"data_path",
       [](SsspOptions& o) { o.data_path = DataPath::kReference; }},
      {"sender_reduction",
       [](SsspOptions& o) { o.sender_reduction = false; }},
      {"parallel_apply", [](SsspOptions& o) { o.parallel_apply = false; }},
      {"collect_phase_details",
       [](SsspOptions& o) { o.collect_phase_details = true; }},
      {"collect_bucket_details",
       [](SsspOptions& o) { o.collect_bucket_details = true; }},
      {"cost_model.t_step_ns",
       [](SsspOptions& o) { o.cost_model.t_step_ns = 123.0; }},
      {"cost_model.t_relax_ns",
       [](SsspOptions& o) { o.cost_model.t_relax_ns = 123.0; }},
      {"cost_model.t_byte_ns",
       [](SsspOptions& o) { o.cost_model.t_byte_ns = 123.0; }},
      {"cost_model.t_scan_ns",
       [](SsspOptions& o) { o.cost_model.t_scan_ns = 123.0; }},
  };
  return kMutations;
}

TEST(OptionsSignature, EveryFieldChangesTheSignature) {
  const std::string base = options_signature(SsspOptions{});
  for (const auto& m : mutations()) {
    SsspOptions o;
    m.apply(o);
    EXPECT_NE(options_signature(o), base)
        << "toggling " << m.name << " did not change the signature — "
        << "the result cache would conflate the two configurations";
  }
}

TEST(OptionsSignature, PairwiseDistinct) {
  // Single-field mutations must stay distinguishable from *each other*,
  // not just from the default: two fields serialized into the same bytes
  // (e.g. both printed as a bare "1" into one slot) pass the test above
  // but collide here.
  const auto& muts = mutations();
  for (std::size_t i = 0; i < muts.size(); ++i) {
    SsspOptions a;
    muts[i].apply(a);
    const std::string sig_a = options_signature(a);
    for (std::size_t j = i + 1; j < muts.size(); ++j) {
      SsspOptions b;
      muts[j].apply(b);
      EXPECT_NE(sig_a, options_signature(b))
          << muts[i].name << " and " << muts[j].name
          << " produce identical signatures";
    }
  }
}

TEST(OptionsSignature, CostModelFieldsDoNotAlias) {
  // All four cost-model knobs default to different values and are printed
  // in sequence; setting two *different* fields to the *same* value must
  // still be told apart (a delimiter bug would merge them).
  SsspOptions a;
  a.cost_model.t_relax_ns = 9.0;
  SsspOptions b;
  b.cost_model.t_byte_ns = 9.0;
  EXPECT_NE(options_signature(a), options_signature(b));
}

TEST(OptionsSignature, ForcedPullIsOrderSensitive) {
  SsspOptions a;
  a.forced_pull = {true, false};
  SsspOptions b;
  b.forced_pull = {false, true};
  EXPECT_NE(options_signature(a), options_signature(b));
}

TEST(OptionsSignature, ExcludedTraceFieldIsIgnored) {
  // trace never changes results or reported statistics; it is on the
  // analyzer's exclusion allowlist (scripts/analysis/policy.toml) and a
  // recorder pointer must not fragment the cache.
  TraceRecorder recorder;
  SsspOptions with_trace;
  with_trace.trace = &recorder;
  EXPECT_EQ(options_signature(with_trace), options_signature(SsspOptions{}));
}

TEST(OptionsSignature, Deterministic) {
  SsspOptions o = SsspOptions::lb_opt(13, 128);
  o.forced_pull = {true, true, false};
  EXPECT_EQ(options_signature(o), options_signature(o));
}

}  // namespace
}  // namespace parsssp
