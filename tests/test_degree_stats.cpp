#include "graph/degree_stats.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

CsrGraph star_plus_isolated() {
  // Vertex 0 with 4 leaves, vertices 5..7 isolated.
  EdgeList list(8);
  for (vid_t leaf = 1; leaf <= 4; ++leaf) list.add_edge(0, leaf, 1);
  return CsrGraph::from_edges(list);
}

TEST(DegreeStats, MaxDegreeAndArgmax) {
  const auto g = star_plus_isolated();
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.argmax_vertex, 0u);
}

TEST(DegreeStats, MeanDegree) {
  const auto g = star_plus_isolated();
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_DOUBLE_EQ(s.mean_degree, 8.0 / 8.0);  // 8 arcs over 8 vertices
}

TEST(DegreeStats, IsolatedCount) {
  const auto g = star_plus_isolated();
  EXPECT_EQ(compute_degree_stats(g).num_isolated, 3u);
}

TEST(DegreeStats, HeavyCount) {
  const auto g = star_plus_isolated();
  EXPECT_EQ(compute_degree_stats(g, 1).num_heavy, 1u);  // only the hub
  EXPECT_EQ(compute_degree_stats(g, 4).num_heavy, 0u);
}

TEST(DegreeStats, Log2Histogram) {
  const auto g = star_plus_isolated();
  const DegreeStats s = compute_degree_stats(g);
  // Leaves: degree 1 -> bucket 0 (4 of them). Hub: degree 4 -> bucket 2.
  ASSERT_GE(s.log2_histogram.size(), 3u);
  EXPECT_EQ(s.log2_histogram[0], 4u);
  EXPECT_EQ(s.log2_histogram[2], 1u);
}

TEST(DegreeStats, HistogramTotalsMatchNonIsolated) {
  const auto g = star_plus_isolated();
  const DegreeStats s = compute_degree_stats(g);
  std::size_t total = 0;
  for (const auto c : s.log2_histogram) total += c;
  EXPECT_EQ(total + s.num_isolated, g.num_vertices());
}

TEST(DegreeStats, Percentile) {
  const auto g = star_plus_isolated();
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_EQ(s.percentile(g, 0), 0u);
  EXPECT_EQ(s.percentile(g, 100), 4u);
}

TEST(DegreeStats, EmptyGraph) {
  const CsrGraph g;
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_EQ(s.max_degree, 0u);
  EXPECT_EQ(s.num_isolated, 0u);
}

}  // namespace
}  // namespace parsssp
