#include <gtest/gtest.h>

#include <sstream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "graph/graph_algos.hpp"

namespace parsssp {
namespace {

TEST(TextTable, AlignedOutput) {
  TextTable t("demo");
  t.set_header({"a", "long-column"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("long-column"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.5), "1.5");
  EXPECT_EQ(TextTable::num(1.0), "1");
  EXPECT_EQ(TextTable::num(0.123456, 3), "0.123");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

TEST(PaperNote, Printed) {
  std::ostringstream os;
  print_paper_note(os, "pull wins on skewed buckets");
  EXPECT_EQ(os.str(), "paper-shape: pull wins on skewed buckets\n");
}

TEST(Runner, FamilyConfigsMatchPaperParameters) {
  const auto c1 = family_config(RmatFamily::kRmat1, 10);
  EXPECT_DOUBLE_EQ(c1.params.a, 0.57);
  EXPECT_DOUBLE_EQ(c1.params.b, 0.19);
  EXPECT_DOUBLE_EQ(c1.params.d, 0.05);
  EXPECT_EQ(c1.edge_factor, 16u);
  const auto c2 = family_config(RmatFamily::kRmat2, 10);
  EXPECT_DOUBLE_EQ(c2.params.a, 0.50);
  EXPECT_DOUBLE_EQ(c2.params.b, 0.10);
  EXPECT_DOUBLE_EQ(c2.params.d, 0.30);
}

TEST(Runner, FamilyNames) {
  EXPECT_STREQ(family_name(RmatFamily::kRmat1), "RMAT-1");
  EXPECT_STREQ(family_name(RmatFamily::kRmat2), "RMAT-2");
}

TEST(Runner, RunRootsAverages) {
  const auto g = build_rmat_graph(RmatFamily::kRmat1, 8);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto roots = sample_roots(g, 3, 1);
  const RunSummary s = run_roots(solver, SsspOptions::del(25), roots);
  EXPECT_EQ(s.roots, 3u);
  EXPECT_EQ(s.edges, g.num_undirected_edges());
  EXPECT_GT(s.mean_model_gteps, 0.0);
  EXPECT_GT(s.mean_relaxations, 0.0);
  EXPECT_GT(s.mean_buckets, 0.0);
  EXPECT_NEAR(s.mean_relax_per_rank, s.mean_relaxations / 2.0, 1e-6);
}

TEST(Runner, WeakScalingScalesGraphWithRanks) {
  WeakScalingConfig cfg;
  cfg.family = RmatFamily::kRmat2;
  cfg.log2_vertices_per_rank = 8;
  cfg.rank_counts = {1, 2, 4};
  cfg.num_roots = 1;
  const auto points = weak_scaling(cfg, SsspOptions::opt(25));
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].scale, 8u);
  EXPECT_EQ(points[1].scale, 9u);
  EXPECT_EQ(points[2].scale, 10u);
  for (const auto& p : points) {
    EXPECT_GT(p.summary.mean_model_gteps, 0.0);
  }
}

}  // namespace
}  // namespace parsssp
