// Property suite for the relax data path: the pooled zero-copy path (with
// sender-side reduction and lane-parallel apply) must produce bit-identical
// distances AND parents to the reference path (per-phase nested vectors,
// pack/unpack byte exchange, serial apply) under every algorithm variant,
// bucket width, rank count and option toggle — including the batched
// multi-root engine and BFS.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/bfs_engine.hpp"
#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"

namespace parsssp {
namespace {

enum class Algo {
  kDijkstra,
  kBellmanFord,
  kDel25,
  kPrune25,
  kOpt25,
  kLbOpt25
};

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kDijkstra:
      return "Dijkstra";
    case Algo::kBellmanFord:
      return "BellmanFord";
    case Algo::kDel25:
      return "Del25";
    case Algo::kPrune25:
      return "Prune25";
    case Algo::kOpt25:
      return "Opt25";
    case Algo::kLbOpt25:
      return "LbOpt25";
  }
  return "?";
}

SsspOptions algo_options(Algo a) {
  switch (a) {
    case Algo::kDijkstra:
      return SsspOptions::dijkstra();
    case Algo::kBellmanFord:
      return SsspOptions::bellman_ford();
    case Algo::kDel25:
      return SsspOptions::del(25);
    case Algo::kPrune25:
      return SsspOptions::prune(25);
    case Algo::kOpt25:
      return SsspOptions::opt(25);
    case Algo::kLbOpt25:
      return SsspOptions::lb_opt(25, 16);
  }
  return {};
}

/// The full pooled feature set (also the library default, asserted below).
SsspOptions pooled(SsspOptions o) {
  o.data_path = DataPath::kPooled;
  o.sender_reduction = true;
  o.parallel_apply = true;
  return o;
}

/// The seed-faithful baseline: nothing the tentpole added is active.
SsspOptions reference(SsspOptions o) {
  o.data_path = DataPath::kReference;
  o.sender_reduction = false;
  o.parallel_apply = false;
  return o;
}

CsrGraph test_graph(std::uint64_t seed, int scale = 8) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

void expect_identical(const SsspResult& a, const SsspResult& b,
                      const char* what) {
  EXPECT_EQ(a.dist, b.dist) << what << ": distances diverge";
  EXPECT_EQ(a.parent, b.parent) << what << ": parents diverge";
  // Relax counters are pinned pre-reduction, so the paths must agree on
  // them too — reduction saves bytes, not algorithmic work accounting.
  EXPECT_EQ(a.stats.total_relaxations(), b.stats.total_relaxations())
      << what << ": relaxation counters diverge";
}

using Param = std::tuple<std::uint64_t /*seed*/, Algo, rank_t>;

class DataPathProperty : public ::testing::TestWithParam<Param> {};

// The headline property: pooled+reduced+parallel vs reference, with parent
// tracking on (parents are the sharpest detector of message-order drift:
// any change in which equal-distance message arrives first flips them) and
// two lanes per rank so the lane-parallel apply actually partitions.
TEST_P(DataPathProperty, PooledBitIdenticalToReference) {
  const auto [seed, algo, ranks] = GetParam();
  const auto g = test_graph(seed);
  SsspOptions base = algo_options(algo);
  base.track_parents = true;
  Solver solver(g, {.machine = {.num_ranks = ranks, .lanes_per_rank = 2}});
  const auto roots = sample_roots(g, 2, seed);
  for (const vid_t root : roots) {
    const auto got = solver.solve(root, pooled(base));
    const auto want = solver.solve(root, reference(base));
    expect_identical(got, want, algo_name(algo));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DataPathProperty,
    ::testing::Combine(
        ::testing::Values(11ULL, 12ULL),
        ::testing::Values(Algo::kDijkstra, Algo::kBellmanFord, Algo::kDel25,
                          Algo::kPrune25, Algo::kOpt25, Algo::kLbOpt25),
        ::testing::Values(rank_t{1}, rank_t{3}, rank_t{4})),
    [](const ::testing::TestParamInfo<Param>& tpi) {
      return "seed" + std::to_string(std::get<0>(tpi.param)) + "_" +
             algo_name(std::get<1>(tpi.param)) + "_ranks" +
             std::to_string(std::get<2>(tpi.param));
    });

// Bucket widths stress different phase mixes (many short phases at small
// Delta, long-phase dominated at large Delta, pull phases under prune).
class DataPathDeltaSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DataPathDeltaSweep, PooledBitIdenticalAcrossDeltas) {
  const std::uint32_t delta = GetParam();
  const auto g = test_graph(21);
  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});
  for (SsspOptions base :
       {SsspOptions::prune(delta), SsspOptions::opt(delta)}) {
    base.track_parents = true;
    const auto got = solver.solve(0, pooled(base));
    const auto want = solver.solve(0, reference(base));
    expect_identical(got, want, "delta sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, DataPathDeltaSweep,
                         ::testing::Values(1u, 5u, 25u, 256u, 10000u));

// Each tentpole feature must be independently inert on results: pooling
// without reduction, pooling without parallel apply, and the library
// defaults (which are the full pooled set) all agree with the reference.
TEST(DataPathToggles, EveryCombinationMatchesReference) {
  const auto g = test_graph(31);
  Solver solver(g, {.machine = {.num_ranks = 3, .lanes_per_rank = 2}});
  SsspOptions base = SsspOptions::opt(25);
  base.track_parents = true;
  const auto want = solver.solve(5, reference(base));
  for (const bool red : {false, true}) {
    for (const bool par : {false, true}) {
      SsspOptions o = base;
      o.data_path = DataPath::kPooled;
      o.sender_reduction = red;
      o.parallel_apply = par;
      const auto got = solver.solve(5, o);
      expect_identical(got, want, red ? "reduction on" : "reduction off");
    }
  }
  // The defaults are the full pooled path — no hidden opt-out.
  const SsspOptions defaults = [] {
    SsspOptions o = SsspOptions::opt(25);
    o.track_parents = true;
    return o;
  }();
  EXPECT_EQ(defaults.data_path, DataPath::kPooled);
  EXPECT_TRUE(defaults.sender_reduction);
  EXPECT_TRUE(defaults.parallel_apply);
  expect_identical(solver.solve(5, defaults), want, "defaults");
}

// Forced pull sequences route everything through the request/response path;
// diagnostics collection disables long-push reduction (Fig 7 counts every
// emitted relaxation receiver-side) — both must stay bit-identical.
TEST(DataPathToggles, ForcedPullAndDiagnosticsMatchReference) {
  const auto g = test_graph(37);
  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});
  SsspOptions base = SsspOptions::prune(25);
  base.track_parents = true;
  base.prune_mode = PruneMode::kForcedSequence;
  base.forced_pull.assign(64, true);
  expect_identical(solver.solve(2, pooled(base)), solver.solve(2, reference(base)),
                   "forced pull");

  SsspOptions diag = SsspOptions::opt(25);
  diag.track_parents = true;
  diag.collect_phase_details = true;
  diag.collect_bucket_details = true;
  const auto got = solver.solve(2, pooled(diag));
  const auto want = solver.solve(2, reference(diag));
  expect_identical(got, want, "diagnostics");
  ASSERT_EQ(got.stats.phase_details.size(), want.stats.phase_details.size());
  for (std::size_t i = 0; i < got.stats.phase_details.size(); ++i) {
    EXPECT_EQ(got.stats.phase_details[i].relaxations,
              want.stats.phase_details[i].relaxations)
        << "phase " << i;
  }
}

// The batched multi-root engine rides the same pooled path; every root's
// distance vector must match the reference run's.
TEST(DataPathMultiRoot, SolveMultiBitIdentical) {
  const auto g = test_graph(41);
  Solver solver(g, {.machine = {.num_ranks = 3, .lanes_per_rank = 2}});
  const std::vector<vid_t> roots = {0, 7, 7, 19, 3};
  SsspOptions base = SsspOptions::opt(25);
  const auto got = solver.solve_multi(roots, pooled(base));
  const auto want = solver.solve_multi(roots, reference(base));
  ASSERT_EQ(got.dist.size(), want.dist.size());
  for (std::size_t i = 0; i < got.dist.size(); ++i) {
    EXPECT_EQ(got.dist[i], want.dist[i]) << "root index " << i;
  }
}

// BFS: levels and parents identical under both data paths, with and
// without direction optimization (bottom-up steps exchange bitmaps through
// the pool too).
TEST(DataPathBfs, LevelsAndParentsBitIdentical) {
  const auto g = test_graph(47);
  BfsSolver bfs(g, {.num_ranks = 4});
  for (const bool dirs : {true, false}) {
    BfsOptions p;
    p.direction_optimize = dirs;
    p.track_parents = true;
    BfsOptions r = p;
    r.data_path = DataPath::kReference;
    r.sender_reduction = false;
    const auto got = bfs.solve(1, p);
    const auto want = bfs.solve(1, r);
    EXPECT_EQ(got.level, want.level) << "direction_optimize=" << dirs;
    EXPECT_EQ(got.parent, want.parent) << "direction_optimize=" << dirs;
    EXPECT_EQ(got.stats.levels, want.stats.levels);
  }
}

// Sender-side reduction must actually shrink the wire: on an RMAT graph
// (hub-heavy, lots of same-destination relaxations per phase) the pooled
// path with reduction moves strictly fewer bytes than the reference path,
// while the algorithmic relax counters stay equal.
TEST(DataPathTraffic, ReductionShrinksWireBytes) {
  const auto g = test_graph(53, /*scale=*/9);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const SsspOptions base = SsspOptions::del(25);
  const auto got = solver.solve(0, pooled(base));
  const std::uint64_t pooled_bytes =
      solver.machine().traffic().merged().total_bytes();
  const auto want = solver.solve(0, reference(base));
  const std::uint64_t reference_bytes =
      solver.machine().traffic().merged().total_bytes();
  expect_identical(got, want, "traffic");
  EXPECT_LT(pooled_bytes, reference_bytes);
}

}  // namespace
}  // namespace parsssp
