#include "core/load_balance.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <tuple>

namespace parsssp {
namespace {

CsrGraph hub_graph() {
  // Vertex 0: degree 8 hub; vertices 1..8 degree 1 (plus an edge 1-2).
  EdgeList list;
  for (vid_t leaf = 1; leaf <= 8; ++leaf) list.add_edge(0, leaf, 2);
  list.add_edge(1, 2, 3);
  return CsrGraph::from_edges(list);
}

struct Fixture {
  CsrGraph g = hub_graph();
  BlockPartition part{9, 1};
  LocalEdgeView view = LocalEdgeView::build(g, part, 0, 10);
};

TEST(SplitByDegree, ThresholdZeroAllLight) {
  Fixture f;
  const std::vector<vid_t> sources{0, 1, 2};
  const auto split = split_by_degree(sources, f.view, 0);
  EXPECT_EQ(split.light.size(), 3u);
  EXPECT_TRUE(split.heavy.empty());
}

TEST(SplitByDegree, HubDetected) {
  Fixture f;
  const std::vector<vid_t> sources{0, 1, 2};
  const auto split = split_by_degree(sources, f.view, 4);
  EXPECT_EQ(split.heavy, (std::vector<vid_t>{0}));
  EXPECT_EQ(split.light, (std::vector<vid_t>{1, 2}));
}

TEST(SplitByDegree, ThresholdAtDegreeIsLight) {
  Fixture f;
  const std::vector<vid_t> sources{0};
  const auto split = split_by_degree(sources, f.view, 8);  // deg(0)==8, not >
  EXPECT_TRUE(split.heavy.empty());
}

// Collects (u, to, w) triples emitted by lane_parallel_arcs and compares
// against a sequential reference, for each lane/threshold combination.
TEST(LaneParallelArcs, VisitsEveryArcExactlyOnce) {
  Fixture f;
  const std::vector<vid_t> sources{0, 1, 5};

  std::multiset<std::tuple<vid_t, vid_t, weight_t>> expected;
  for (const vid_t u : sources) {
    for (const Arc& a : f.view.all_arcs(u)) {
      expected.insert({u, a.to, a.w});
    }
  }

  for (const unsigned lanes : {1u, 2u, 4u}) {
    for (const std::size_t threshold : {std::size_t{0}, std::size_t{4}}) {
      ThreadPool pool(lanes);
      std::mutex mu;
      std::multiset<std::tuple<vid_t, vid_t, weight_t>> got;
      lane_parallel_arcs(
          pool, sources, f.view, threshold,
          [&](vid_t u) { return f.view.all_arcs(u); },
          [&](unsigned, vid_t u, const Arc& a) {
            std::lock_guard lock(mu);
            got.insert({u, a.to, a.w});
          });
      EXPECT_EQ(got, expected) << "lanes=" << lanes << " thr=" << threshold;
    }
  }
}

TEST(LaneParallelArcs, HeavyVertexSpreadAcrossLanes) {
  Fixture f;
  const std::vector<vid_t> sources{0};  // hub only, degree 8
  ThreadPool pool(4);
  std::mutex mu;
  std::map<unsigned, int> arcs_per_lane;
  lane_parallel_arcs(
      pool, sources, f.view, /*threshold=*/2,
      [&](vid_t u) { return f.view.all_arcs(u); },
      [&](unsigned lane, vid_t, const Arc&) {
        std::lock_guard lock(mu);
        arcs_per_lane[lane]++;
      });
  // 8 arcs over 4 lanes -> every lane gets exactly 2.
  EXPECT_EQ(arcs_per_lane.size(), 4u);
  for (const auto& [lane, count] : arcs_per_lane) EXPECT_EQ(count, 2);
}

TEST(LaneParallelArcs, ShortArcSelector) {
  Fixture f;
  const std::vector<vid_t> sources{1};
  ThreadPool pool(1);
  int visits = 0;
  lane_parallel_arcs(
      pool, sources, f.view, 0,
      [&](vid_t u) { return f.view.short_arcs(u); },
      [&](unsigned, vid_t, const Arc& a) {
        EXPECT_LT(a.w, 10u);
        ++visits;
      });
  EXPECT_EQ(visits, 2);  // vertex 1: arcs to 0 (w=2) and 2 (w=3)
}

TEST(LaneParallelArcs, EmptySources) {
  Fixture f;
  ThreadPool pool(2);
  int visits = 0;
  lane_parallel_arcs(
      pool, std::vector<vid_t>{}, f.view, 4,
      [&](vid_t u) { return f.view.all_arcs(u); },
      [&](unsigned, vid_t, const Arc&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

}  // namespace
}  // namespace parsssp
