#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace parsssp {
namespace {

EdgeList triangle() {
  EdgeList list;
  list.add_edge(0, 1, 2);
  list.add_edge(1, 2, 3);
  list.add_edge(2, 0, 4);
  return list;
}

TEST(CsrGraph, EmptyGraph) {
  CsrGraph g = CsrGraph::from_edges(EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_EQ(g.num_undirected_edges(), 0u);
}

TEST(CsrGraph, VerticesWithoutEdges) {
  CsrGraph g = CsrGraph::from_edges(EdgeList{5});
  EXPECT_EQ(g.num_vertices(), 5u);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(CsrGraph, UndirectedEdgeStoredTwice) {
  CsrGraph g = CsrGraph::from_edges(triangle());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(CsrGraph, NeighborsCarryWeights) {
  CsrGraph g = CsrGraph::from_edges(triangle());
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  // Sorted by destination.
  EXPECT_EQ(n0[0], (Arc{1, 2}));
  EXPECT_EQ(n0[1], (Arc{2, 4}));
}

TEST(CsrGraph, SymmetryOfArcs) {
  CsrGraph g = CsrGraph::from_edges(triangle());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.neighbors(u)) {
      const auto back = g.neighbors(a.to);
      const bool found = std::any_of(
          back.begin(), back.end(),
          [&](const Arc& b) { return b.to == u && b.w == a.w; });
      EXPECT_TRUE(found) << "missing reverse arc " << a.to << "->" << u;
    }
  }
}

TEST(CsrGraph, SelfLoopStoredOnce) {
  EdgeList list;
  list.add_edge(1, 1, 7);
  CsrGraph g = CsrGraph::from_edges(list);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(1)[0], (Arc{1, 7}));
}

TEST(CsrGraph, MultiEdgesPreserved) {
  EdgeList list;
  list.add_edge(0, 1, 2);
  list.add_edge(0, 1, 5);
  CsrGraph g = CsrGraph::from_edges(list);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  const auto n = g.neighbors(0);
  EXPECT_EQ(n[0].w, 2u);
  EXPECT_EQ(n[1].w, 5u);
}

TEST(CsrGraph, MaxWeightTracked) {
  CsrGraph g = CsrGraph::from_edges(triangle());
  EXPECT_EQ(g.max_weight(), 4u);
}

TEST(CsrGraph, OffsetsAreMonotone) {
  CsrGraph g = CsrGraph::from_edges(triangle());
  const auto& off = g.offsets();
  ASSERT_EQ(off.size(), g.num_vertices() + 1);
  for (std::size_t i = 1; i < off.size(); ++i) EXPECT_LE(off[i - 1], off[i]);
  EXPECT_EQ(off.back(), g.num_arcs());
}

TEST(CsrGraph, StarDegrees) {
  EdgeList list;
  for (vid_t leaf = 1; leaf <= 6; ++leaf) list.add_edge(0, leaf, 1);
  CsrGraph g = CsrGraph::from_edges(list);
  EXPECT_EQ(g.degree(0), 6u);
  for (vid_t leaf = 1; leaf <= 6; ++leaf) EXPECT_EQ(g.degree(leaf), 1u);
}

}  // namespace
}  // namespace parsssp
