#include "core/options.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

TEST(Options, DijkstraPreset) {
  const auto o = SsspOptions::dijkstra();
  EXPECT_EQ(o.delta, 1u);
  EXPECT_FALSE(o.pruning);
  EXPECT_LT(o.hybrid_tau, 0.0);
  EXPECT_FALSE(o.bellman_ford_regime());
}

TEST(Options, BellmanFordPreset) {
  const auto o = SsspOptions::bellman_ford();
  EXPECT_TRUE(o.bellman_ford_regime());
  EXPECT_FALSE(o.edge_classification);
  EXPECT_FALSE(o.pruning);
}

TEST(Options, DelPreset) {
  const auto o = SsspOptions::del(25);
  EXPECT_EQ(o.delta, 25u);
  EXPECT_TRUE(o.edge_classification);
  EXPECT_FALSE(o.ios);
  EXPECT_FALSE(o.pruning);
  EXPECT_LT(o.hybrid_tau, 0.0);
}

TEST(Options, PrunePreset) {
  const auto o = SsspOptions::prune(25);
  EXPECT_TRUE(o.ios);
  EXPECT_TRUE(o.pruning);
  EXPECT_EQ(o.prune_mode, PruneMode::kHeuristic);
  EXPECT_LT(o.hybrid_tau, 0.0);
}

TEST(Options, OptPreset) {
  const auto o = SsspOptions::opt(40);
  EXPECT_EQ(o.delta, 40u);
  EXPECT_TRUE(o.pruning);
  EXPECT_DOUBLE_EQ(o.hybrid_tau, 0.4);
  EXPECT_EQ(o.heavy_degree_threshold, 0u);
}

TEST(Options, LbOptPreset) {
  const auto o = SsspOptions::lb_opt(25, 512);
  EXPECT_DOUBLE_EQ(o.hybrid_tau, 0.4);
  EXPECT_EQ(o.heavy_degree_threshold, 512u);
}

TEST(Options, PresetsBuildOnEachOther) {
  // OPT = Prune + hybrid; everything else identical.
  const auto prune = SsspOptions::prune(25);
  const auto opt = SsspOptions::opt(25);
  EXPECT_EQ(prune.delta, opt.delta);
  EXPECT_EQ(prune.ios, opt.ios);
  EXPECT_EQ(prune.pruning, opt.pruning);
  EXPECT_NE(prune.hybrid_tau, opt.hybrid_tau);
}

}  // namespace
}  // namespace parsssp
