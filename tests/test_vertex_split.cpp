#include "graph/vertex_split.hpp"

#include <gtest/gtest.h>

#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

EdgeList star(std::size_t leaves, weight_t w = 3) {
  EdgeList list;
  for (vid_t leaf = 1; leaf <= leaves; ++leaf) list.add_edge(0, leaf, w);
  return list;
}

TEST(VertexSplit, NoSplitBelowThreshold) {
  const EdgeList list = star(4);
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitConfig cfg;
  cfg.degree_threshold = 10;
  cfg.scatter_ids = false;
  const SplitResult r = split_heavy_vertices(list, g, cfg);
  EXPECT_EQ(r.num_proxies, 0u);
  EXPECT_EQ(r.num_split_vertices, 0u);
  EXPECT_EQ(r.graph.num_edges(), list.num_edges());
}

TEST(VertexSplit, ProxyCountMatchesCeilDivision) {
  const EdgeList list = star(10);
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitConfig cfg;
  cfg.degree_threshold = 3;  // hub degree 10 > 3 -> ceil(10/3) = 4 proxies
  cfg.scatter_ids = false;
  const SplitResult r = split_heavy_vertices(list, g, cfg);
  EXPECT_EQ(r.num_split_vertices, 1u);
  EXPECT_EQ(r.num_proxies, 4u);
  // 10 original edges + 4 zero-weight spokes.
  EXPECT_EQ(r.graph.num_edges(), 14u);
}

TEST(VertexSplit, ZeroWeightSpokesOnly) {
  const EdgeList list = star(10);
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitConfig cfg;
  cfg.degree_threshold = 3;
  cfg.scatter_ids = false;
  const SplitResult r = split_heavy_vertices(list, g, cfg);
  std::size_t zero = 0;
  for (const auto& e : r.graph.edges()) {
    if (e.w == 0) ++zero;
  }
  EXPECT_EQ(zero, r.num_proxies);
}

TEST(VertexSplit, DistancesPreservedOnStar) {
  const EdgeList list = star(10, 7);
  const CsrGraph g = CsrGraph::from_edges(list);
  const auto expected = dijkstra_distances(g, 0);

  for (const bool scatter : {false, true}) {
    SplitConfig cfg;
    cfg.degree_threshold = 3;
    cfg.scatter_ids = scatter;
    const SplitResult r = split_heavy_vertices(list, g, cfg);
    const CsrGraph g2 = CsrGraph::from_edges(r.graph);
    const auto dist2 = dijkstra_distances(g2, r.orig_to_new[0]);
    const auto projected = r.project_distances(dist2);
    EXPECT_EQ(projected, expected) << "scatter=" << scatter;
  }
}

TEST(VertexSplit, DistancesPreservedOnRmat) {
  RmatConfig rc;
  rc.scale = 9;
  rc.edge_factor = 8;
  const EdgeList list = generate_rmat(rc);
  const CsrGraph g = CsrGraph::from_edges(list);
  const vid_t root = 3;
  const auto expected = dijkstra_distances(g, root);

  SplitConfig cfg;
  cfg.degree_threshold = 32;
  const SplitResult r = split_heavy_vertices(list, g, cfg);
  ASSERT_GT(r.num_split_vertices, 0u) << "test graph should have heavy hubs";
  const CsrGraph g2 = CsrGraph::from_edges(r.graph);
  const auto dist2 = dijkstra_distances(g2, r.orig_to_new[root]);
  EXPECT_EQ(r.project_distances(dist2), expected);
}

TEST(VertexSplit, MaxDegreeReduced) {
  const EdgeList list = star(100);
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitConfig cfg;
  cfg.degree_threshold = 10;
  cfg.scatter_ids = false;
  const SplitResult r = split_heavy_vertices(list, g, cfg);
  const CsrGraph g2 = CsrGraph::from_edges(r.graph);
  std::size_t max_orig_edge_degree = 0;
  for (vid_t v = 0; v < g2.num_vertices(); ++v) {
    // Count only non-spoke arcs: proxies have <= 10 original edges + 1 spoke.
    std::size_t d = 0;
    for (const Arc& a : g2.neighbors(v)) {
      if (a.w != 0) ++d;
    }
    max_orig_edge_degree = std::max(max_orig_edge_degree, d);
  }
  EXPECT_LE(max_orig_edge_degree, 10u);
}

TEST(VertexSplit, ScatterPermutesButMapsBack) {
  const EdgeList list = star(20);
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitConfig cfg;
  cfg.degree_threshold = 5;
  cfg.scatter_ids = true;
  const SplitResult r = split_heavy_vertices(list, g, cfg);
  // orig_to_new must be injective over originals.
  std::vector<char> seen(r.graph.num_vertices(), 0);
  for (const vid_t v : r.orig_to_new) {
    ASSERT_LT(v, r.graph.num_vertices());
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(VertexSplit, EdgesPerProxyOverride) {
  const EdgeList list = star(12);
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitConfig cfg;
  cfg.degree_threshold = 4;
  cfg.edges_per_proxy = 6;  // ceil(12/6) = 2 proxies
  cfg.scatter_ids = false;
  const SplitResult r = split_heavy_vertices(list, g, cfg);
  EXPECT_EQ(r.num_proxies, 2u);
}

}  // namespace
}  // namespace parsssp
