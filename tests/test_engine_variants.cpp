// Every named algorithm variant of the paper must compute exactly the same
// distances; only their work/phase profiles differ.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph(std::uint32_t scale, std::uint64_t seed = 1) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

struct Variant {
  const char* name;
  SsspOptions options;
};

std::vector<Variant> all_variants() {
  return {
      {"dijkstra", SsspOptions::dijkstra()},
      {"bellman-ford", SsspOptions::bellman_ford()},
      {"del-10", SsspOptions::del(10)},
      {"del-25", SsspOptions::del(25)},
      {"del-40", SsspOptions::del(40)},
      {"prune-25", SsspOptions::prune(25)},
      {"opt-25", SsspOptions::opt(25)},
      {"opt-40", SsspOptions::opt(40)},
      {"lb-opt-25", SsspOptions::lb_opt(25, 16)},
  };
}

TEST(EngineVariants, AllMatchOracleOnRmat) {
  const auto g = rmat_graph(9);
  const vid_t root = 1;
  const auto expected = dijkstra_distances(g, root);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  for (const auto& v : all_variants()) {
    const auto r = solver.solve(root, v.options);
    EXPECT_EQ(r.dist, expected) << v.name;
  }
}

TEST(EngineVariants, PushOnlyPullOnlyAgree) {
  const auto g = rmat_graph(9, 3);
  const vid_t root = 5;
  const auto expected = dijkstra_distances(g, root);
  Solver solver(g, {.machine = {.num_ranks = 3}});
  for (const auto mode :
       {PruneMode::kPushOnly, PruneMode::kPullOnly, PruneMode::kHeuristic}) {
    SsspOptions o = SsspOptions::prune(25);
    o.prune_mode = mode;
    const auto r = solver.solve(root, o);
    EXPECT_EQ(r.dist, expected) << static_cast<int>(mode);
  }
}

TEST(EngineVariants, ForcedSequencesAllCorrect) {
  // Exhaustively force every push/pull sequence over the first 4 buckets;
  // distances must never change (§IV-G's validation harness relies on this).
  const auto g = rmat_graph(8, 7);
  const vid_t root = 2;
  const auto expected = dijkstra_distances(g, root);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  for (unsigned mask = 0; mask < 16; ++mask) {
    SsspOptions o = SsspOptions::prune(25);
    o.prune_mode = PruneMode::kForcedSequence;
    o.forced_pull.assign(4, false);
    for (unsigned b = 0; b < 4; ++b) o.forced_pull[b] = (mask >> b) & 1;
    const auto r = solver.solve(root, o);
    EXPECT_EQ(r.dist, expected) << "mask=" << mask;
  }
}

TEST(EngineVariants, IosToggleDoesNotChangeDistances) {
  const auto g = rmat_graph(9, 11);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  SsspOptions with_ios = SsspOptions::prune(25);
  SsspOptions without = with_ios;
  without.ios = false;
  EXPECT_EQ(solver.solve(0, with_ios).dist, solver.solve(0, without).dist);
}

TEST(EngineVariants, EstimatorChoiceDoesNotChangeDistances) {
  const auto g = rmat_graph(9, 13);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  SsspOptions exact = SsspOptions::prune(25);
  exact.estimator = EstimatorKind::kExact;
  SsspOptions approx = SsspOptions::prune(25);
  approx.estimator = EstimatorKind::kExpectation;
  EXPECT_EQ(solver.solve(0, exact).dist, solver.solve(0, approx).dist);
}

TEST(EngineVariants, HybridTauSweepAllCorrect) {
  const auto g = rmat_graph(9, 17);
  const auto expected = dijkstra_distances(g, 0);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  for (const double tau : {0.0, 0.1, 0.4, 0.9, 1.0}) {
    SsspOptions o = SsspOptions::opt(25);
    o.hybrid_tau = tau;
    EXPECT_EQ(solver.solve(0, o).dist, expected) << "tau=" << tau;
  }
}

TEST(EngineVariants, LanesAndHeavyThresholdCombinations) {
  const auto g = rmat_graph(9, 19);
  const auto expected = dijkstra_distances(g, 4);
  for (const unsigned lanes : {1u, 2u, 4u}) {
    for (const std::size_t threshold : {std::size_t{0}, std::size_t{8}}) {
      Solver solver(g,
                    {.machine = {.num_ranks = 2, .lanes_per_rank = lanes}});
      SsspOptions o = SsspOptions::opt(25);
      o.heavy_degree_threshold = threshold;
      EXPECT_EQ(solver.solve(4, o).dist, expected)
          << "lanes=" << lanes << " thr=" << threshold;
    }
  }
}

TEST(EngineVariants, PathGraphStressesBuckets) {
  // A long path maximizes bucket count: worst case for Delta-stepping.
  EdgeList list;
  for (vid_t i = 0; i < 300; ++i) list.add_edge(i, i + 1, 7);
  const auto g = CsrGraph::from_edges(list);
  const auto expected = dijkstra_distances(g, 0);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  for (const auto& v : all_variants()) {
    EXPECT_EQ(solver.solve(0, v.options).dist, expected) << v.name;
  }
}

TEST(EngineVariants, CliqueGraphStressesVolume) {
  EdgeList list;
  for (vid_t u = 0; u < 24; ++u) {
    for (vid_t v = u + 1; v < 24; ++v) {
      list.add_edge(u, v, 1 + ((u * 31 + v) % 200));
    }
  }
  const auto g = CsrGraph::from_edges(list);
  const auto expected = dijkstra_distances(g, 0);
  Solver solver(g, {.machine = {.num_ranks = 3}});
  for (const auto& v : all_variants()) {
    EXPECT_EQ(solver.solve(0, v.options).dist, expected) << v.name;
  }
}

TEST(EngineVariants, StarGraphHeavyHub) {
  EdgeList list;
  for (vid_t leaf = 1; leaf <= 100; ++leaf) {
    list.add_edge(0, leaf, 1 + (leaf % 64));
  }
  const auto g = CsrGraph::from_edges(list);
  for (const vid_t root : {vid_t{0}, vid_t{50}}) {
    const auto expected = dijkstra_distances(g, root);
    Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 2}});
    const auto r = solver.solve(root, SsspOptions::lb_opt(25, 16));
    EXPECT_EQ(r.dist, expected) << "root=" << root;
  }
}

}  // namespace
}  // namespace parsssp
