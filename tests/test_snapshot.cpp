// The MVCC snapshot layer (docs/SNAPSHOTS.md): frozen-view equivalence
// against the live DynamicGraph, pin/publish/retire lifecycle and
// reclamation, the patch log, the snapshots-disabled guards, and — written
// for the TSan lane of scripts/check.sh, required to pass without it —
// publish/pin/retire churn with forced compactions under concurrent
// readers, plus the destroyed-owner negative test (an outstanding
// SnapshotRef keeps its whole version alive after the QueryEngine, the
// DynamicGraph and the SnapshotManager are gone).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"
#include "serve/query_engine.hpp"
#include "snapshot/graph_snapshot.hpp"
#include "snapshot/snapshot_manager.hpp"
#include "update/dynamic_graph.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph(std::uint64_t seed, int scale = 7) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return strip_self_loops(CsrGraph::from_edges(generate_rmat(cfg)));
}

std::vector<Arc> sorted_arcs(std::vector<Arc> arcs) {
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    return std::tie(a.to, a.w) < std::tie(b.to, b.w);
  });
  return arcs;
}

std::vector<Arc> snapshot_arcs(const GraphSnapshot& snap, vid_t v) {
  return sorted_arcs(snap.arcs_of(v));
}

std::vector<Arc> graph_arcs(const CsrGraph& g, vid_t v) {
  const auto span = g.neighbors(v);
  return sorted_arcs(std::vector<Arc>(span.begin(), span.end()));
}

/// Valid-by-construction batches, generated against (and applied to) a
/// mirror so batch i is valid at version i-1 for any graph replaying the
/// same sequence from the same base.
std::vector<EdgeBatch> make_batches(DynamicGraph& mirror, std::size_t count,
                                    std::size_t ops, std::mt19937_64& rng) {
  std::vector<EdgeBatch> batches;
  std::uniform_int_distribution<vid_t> pick(0, mirror.num_vertices() - 1);
  std::uniform_int_distribution<weight_t> pick_w(1, 200);
  while (batches.size() < count) {
    EdgeBatch batch;
    std::map<std::pair<vid_t, vid_t>, bool> used;
    while (batch.size() < ops) {
      vid_t u = pick(rng);
      vid_t v = pick(rng);
      if (u == v || !used.emplace(std::minmax(u, v), true).second) continue;
      const auto w = mirror.find_edge(u, v);
      switch (rng() % 4) {
        case 0:
          if (!w) batch.insert_edge(u, v, pick_w(rng));
          break;
        case 1:
          if (w) batch.delete_edge(u, v);
          break;
        default:
          if (w) batch.update_weight(u, v, pick_w(rng));
          break;
      }
    }
    if (batch.size() == 0) continue;
    mirror.apply(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

TEST(Snapshot, FrozenViewMatchesLiveGraphAndMaterialization) {
  DynamicGraph graph(rmat_graph(31));
  std::mt19937_64 rng(7);
  DynamicGraph mirror(graph.base());
  for (const EdgeBatch& b : make_batches(mirror, 3, 6, rng)) graph.apply(b);

  const SnapshotRef snap = graph.snapshot();
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->version(), 3u);
  EXPECT_EQ(snap->num_vertices(), graph.num_vertices());
  EXPECT_EQ(snap->num_undirected_edges(), graph.num_undirected_edges());
  EXPECT_FALSE(snap->delta().empty());

  const CsrGraph frozen = graph.materialize();
  std::size_t degree_sum = 0;
  for (vid_t v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(snapshot_arcs(*snap, v), graph_arcs(frozen, v)) << "v=" << v;
    EXPECT_EQ(snap->degree(v), graph.degree(v)) << "v=" << v;
    EXPECT_EQ(snapshot_arcs(*snap, v), sorted_arcs(graph.arcs_of(v)))
        << "v=" << v;
    degree_sum += snap->degree(v);
  }
  EXPECT_EQ(degree_sum, 2 * snap->num_undirected_edges());
  for (vid_t u = 0; u < 40; ++u) {
    for (vid_t v = 0; v < 40; ++v) {
      EXPECT_EQ(snap->find_edge(u, v), graph.find_edge(u, v))
          << u << "-" << v;
    }
  }
}

TEST(Snapshot, CompactionRepublishesSameVersionOnFreshBase) {
  DynamicGraph graph(rmat_graph(37));
  const Arc first = graph.arcs_of(0).front();
  graph.apply(EdgeBatch{}.update_weight(0, first.to, first.w + 9));

  const SnapshotRef before = graph.snapshot();
  EXPECT_FALSE(before->delta().empty());
  graph.compact();
  const SnapshotRef after = graph.snapshot();

  EXPECT_EQ(before->version(), after->version());  // same logical graph
  EXPECT_LT(before->publish_seq(), after->publish_seq());
  EXPECT_TRUE(after->new_base());
  EXPECT_TRUE(after->delta().empty());
  EXPECT_NE(before->base_ptr().get(), after->base_ptr().get());
  for (vid_t v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(snapshot_arcs(*before, v), snapshot_arcs(*after, v));
  }
}

TEST(Snapshot, PinnedReaderSurvivesUpdatesAndForcedCompactions) {
  // Every apply compacts (fresh base each version): the pinned version-0
  // reader must keep seeing the original graph bit-for-bit throughout.
  DynamicGraph graph(rmat_graph(41),
                     DynamicGraphConfig{.compact_ratio = 0, .compact_min = 1});
  const SnapshotRef pinned = graph.snapshot();
  const CsrGraph expect = graph.materialize();

  std::mt19937_64 rng(11);
  DynamicGraph mirror(graph.base());
  for (const EdgeBatch& b : make_batches(mirror, 5, 8, rng)) {
    graph.apply(b);
  }
  EXPECT_EQ(graph.version(), 5u);
  EXPECT_EQ(pinned->version(), 0u);
  for (vid_t v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(snapshot_arcs(*pinned, v), graph_arcs(expect, v)) << "v=" << v;
  }

  SnapshotManager* manager = graph.snapshot_manager();
  manager->collect();
  const SnapshotManager::Stats stats = manager->stats();
  EXPECT_EQ(stats.head_version, 5u);
  EXPECT_EQ(stats.oldest_pinned_version, 0u);  // us
  EXPECT_GE(stats.published, 6u);              // seed + 5 compactions
  EXPECT_GE(stats.reclaimed, 4u);              // intermediates are gone
  EXPECT_LE(stats.live, 2u);                   // head + the pinned v0
}

TEST(Snapshot, SupersededUnpinnedVersionsAreReclaimed) {
  DynamicGraph graph(rmat_graph(43));
  std::mt19937_64 rng(13);
  DynamicGraph mirror(graph.base());
  for (const EdgeBatch& b : make_batches(mirror, 4, 4, rng)) graph.apply(b);

  SnapshotManager* manager = graph.snapshot_manager();
  manager->collect();
  const SnapshotManager::Stats stats = manager->stats();
  EXPECT_EQ(stats.published, 5u);  // seed + 4
  EXPECT_EQ(stats.reclaimed, 4u);
  EXPECT_EQ(stats.live, 1u);
  EXPECT_EQ(stats.head_version, 4u);
  EXPECT_EQ(stats.oldest_pinned_version, 4u);  // only the head is live
  EXPECT_GE(stats.retire_latency_last_s, 0.0);
  EXPECT_GE(stats.retire_latency_max_s, stats.retire_latency_last_s);
}

TEST(Snapshot, TouchedBetweenUnionsThePatchLog) {
  DynamicGraph graph(rmat_graph(47));
  const Arc a0 = graph.arcs_of(0).front();
  const Arc a5 = graph.arcs_of(5).front();
  const std::uint64_t seq0 = graph.snapshot()->publish_seq();

  graph.apply(EdgeBatch{}.update_weight(0, a0.to, a0.w + 1));
  graph.apply(EdgeBatch{}.update_weight(5, a5.to, a5.w + 1));
  const std::uint64_t seq2 = graph.snapshot()->publish_seq();
  ASSERT_EQ(seq2, seq0 + 2);

  SnapshotManager* manager = graph.snapshot_manager();
  const auto both = manager->touched_between(seq0, seq2);
  ASSERT_TRUE(both.has_value());
  std::vector<vid_t> expect{0, a0.to, 5, a5.to};
  std::sort(expect.begin(), expect.end());
  expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
  EXPECT_EQ(*both, expect);

  EXPECT_TRUE(manager->touched_between(seq2, seq2).has_value());
  EXPECT_TRUE(manager->touched_between(seq2, seq2)->empty());

  // A compaction publishes a fresh base: per-vertex patching cannot bridge
  // it, so any range crossing it reports "rebuild".
  graph.compact();
  const std::uint64_t seq3 = graph.snapshot()->publish_seq();
  EXPECT_FALSE(manager->touched_between(seq2, seq3).has_value());
  EXPECT_FALSE(manager->touched_between(seq0, seq3).has_value());
}

TEST(Snapshot, DisabledSnapshotsGuardRails) {
  DynamicGraph graph(rmat_graph(53), DynamicGraphConfig{.snapshots = false});
  EXPECT_FALSE(graph.snapshots_enabled());
  EXPECT_EQ(graph.snapshot_manager(), nullptr);
  EXPECT_THROW(graph.snapshot(), std::logic_error);
  // compact() must refuse with a descriptive error instead of pulling the
  // base out from under potential readers.
  try {
    graph.compact();
    FAIL() << "compact() on a snapshot-less graph must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("snapshots are disabled"),
              std::string::npos);
  }
  // The serving layer refuses the graph outright.
  ServeConfig serve;
  serve.machine.num_ranks = 2;
  EXPECT_THROW(QueryEngine(graph, serve), std::invalid_argument);
  // The graph itself still works single-threadedly (PR-5 contract).
  const Arc a = graph.arcs_of(0).front();
  graph.apply(EdgeBatch{}.update_weight(0, a.to, a.w + 1));
  EXPECT_EQ(graph.version(), 1u);
}

TEST(Snapshot, OutstandingRefOutlivesEngineGraphAndManager) {
  // Negative test: destroying the QueryEngine (and then the DynamicGraph,
  // taking the SnapshotManager with it) while a client still holds a
  // SnapshotRef must not free the base early — the ref keeps the whole
  // version readable, bit-for-bit.
  SnapshotRef survivor;
  std::vector<dist_t> expect_dist;
  CsrGraph expect = rmat_graph(59);
  {
    auto graph = std::make_unique<DynamicGraph>(expect);
    ServeConfig serve;
    serve.machine.num_ranks = 2;
    auto engine = std::make_unique<QueryEngine>(*graph, serve);
    const Arc a = graph->arcs_of(1).front();
    engine->update(EdgeBatch{}.update_weight(1, a.to, a.w + 7));
    survivor = engine->current_snapshot();
    ASSERT_TRUE(survivor);
    EXPECT_EQ(survivor->version(), 1u);
    expect = graph->materialize();
    expect_dist = dijkstra_distances(expect, 1);
    engine.reset();  // engine gone, ref still out
    graph.reset();   // graph + manager gone, ref still out
  }
  for (vid_t v = 0; v < expect.num_vertices(); ++v) {
    EXPECT_EQ(snapshot_arcs(*survivor, v), graph_arcs(expect, v));
  }
  // The frozen adjacency still drives a correct solve.
  std::vector<dist_t> dist(survivor->num_vertices(), kInfDist);
  dist[1] = 0;
  // Bellman-Ford over the snapshot's arc iterator: slow but dependency-free.
  for (vid_t round = 0; round < survivor->num_vertices(); ++round) {
    bool changed = false;
    for (vid_t v = 0; v < survivor->num_vertices(); ++v) {
      if (dist[v] == kInfDist) continue;
      survivor->for_each_arc(v, [&](const Arc& arc) {
        if (dist[v] + arc.w < dist[arc.to]) {
          dist[arc.to] = dist[v] + arc.w;
          changed = true;
        }
      });
    }
    if (!changed) break;
  }
  EXPECT_EQ(dist, expect_dist);
  survivor.reset();  // the last unpin reclaims the version; ASan watches
}

TEST(Snapshot, ChurnPublishPinRetireUnderForcedCompactions) {
  // TSan stress: one writer thread publishing (every apply compacts, so
  // every publish swaps the base) against reader threads that pin the
  // current snapshot, walk it, and verify internal consistency. A reader
  // pinned at version 0 for the whole run re-checks its view at the end.
  DynamicGraph graph(rmat_graph(61, /*scale=*/6),
                     DynamicGraphConfig{.compact_ratio = 0, .compact_min = 1});
  const CsrGraph expect0 = graph.materialize();
  const SnapshotRef pinned0 = graph.snapshot();

  constexpr std::size_t kBatches = 60;
  std::mt19937_64 rng(17);
  DynamicGraph mirror(graph.base());
  const std::vector<EdgeBatch> batches = make_batches(mirror, kBatches, 4, rng);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> pins{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&graph, &stop, &pins, t] {
      std::uint64_t last_version = 0;
      std::mt19937_64 local(100 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotRef snap = graph.snapshot();
        // Publishes are ordered: a later pin never sees an older version.
        EXPECT_GE(snap->version(), last_version);
        last_version = snap->version();
        // The pinned version stays internally consistent however many
        // bases the writer swaps underneath.
        std::size_t degree_sum = 0;
        for (vid_t v = 0; v < snap->num_vertices(); ++v) {
          degree_sum += snap->degree(v);
        }
        EXPECT_EQ(degree_sum, 2 * snap->num_undirected_edges());
        const vid_t v = static_cast<vid_t>(local() % snap->num_vertices());
        snap->for_each_arc(v, [&](const Arc& a) {
          EXPECT_LT(a.to, snap->num_vertices());
          EXPECT_GE(a.w, 1u);
        });
        pins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (const EdgeBatch& b : batches) {
    const AppliedBatch applied = graph.apply(b);
    EXPECT_TRUE(applied.compacted);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(pins.load(), 0u);

  EXPECT_EQ(pinned0->version(), 0u);
  for (vid_t v = 0; v < expect0.num_vertices(); ++v) {
    EXPECT_EQ(snapshot_arcs(*pinned0, v), graph_arcs(expect0, v));
  }

  SnapshotManager* manager = graph.snapshot_manager();
  manager->collect();
  const SnapshotManager::Stats stats = manager->stats();
  EXPECT_EQ(stats.head_version, kBatches);
  EXPECT_EQ(stats.oldest_pinned_version, 0u);
  EXPECT_EQ(stats.published, kBatches + 1);
  EXPECT_GE(stats.reclaimed, kBatches - stats.live);
}

}  // namespace
}  // namespace parsssp
