#include "bench_util/stats_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builders.hpp"
#include "graph/graph_algos.hpp"

namespace parsssp {
namespace {

TEST(JsonWriter, FlatObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .field("a", std::uint64_t{1})
      .field("b", 2.5)
      .field("c", true)
      .field("d", std::string_view{"x"})
      .end_object();
  EXPECT_EQ(os.str(), R"({"a":1,"b":2.5,"c":true,"d":"x"})");
}

TEST(JsonWriter, NestedArrayOfObjects) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().begin_array("items");
  w.begin_object_in_array().field("i", std::uint64_t{0}).end_object();
  w.begin_object_in_array().field("i", std::uint64_t{1}).end_object();
  w.end_array().end_object();
  EXPECT_EQ(os.str(), R"({"items":[{"i":0},{"i":1}]})");
}

TEST(JsonWriter, ScalarArray) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().begin_array("flags");
  w.value(true).value(false);
  w.end_array().end_object();
  EXPECT_EQ(os.str(), R"({"flags":[true,false]})");
}

TEST(JsonWriter, EscapesQuotesAndBackslashes) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().field("k", std::string_view{"a\"b\\c"}).end_object();
  EXPECT_EQ(os.str(), R"({"k":"a\"b\\c"})");
}

TEST(StatsJson, SsspStatsRoundTripKeys) {
  SsspStats s;
  s.short_relaxations = 10;
  s.pull_requests = 3;
  s.phases = 7;
  s.buckets = 2;
  s.model_time_s = 0.001;
  s.pull_decisions = {true, false};
  s.async_relaxations = 4;
  s.sync_allreduces = 20;
  s.sync_barriers = 22;
  s.quiescence_rounds = 3;
  s.token_hops = 9;
  std::ostringstream os;
  write_json(os, s, 1000);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"relaxations\":17"), std::string::npos);
  EXPECT_NE(j.find("\"async_relaxations\":4"), std::string::npos);
  EXPECT_NE(j.find("\"phases\":7"), std::string::npos);
  EXPECT_NE(j.find("\"pull_decisions\":[true,false]"), std::string::npos);
  EXPECT_NE(j.find("\"gteps_model\":"), std::string::npos);
  EXPECT_NE(j.find("\"sync_allreduces\":20"), std::string::npos);
  EXPECT_NE(j.find("\"sync_barriers\":22"), std::string::npos);
  EXPECT_NE(j.find("\"global_syncs\":42"), std::string::npos);
  EXPECT_NE(j.find("\"quiescence_rounds\":3"), std::string::npos);
  EXPECT_NE(j.find("\"token_hops\":9"), std::string::npos);
}

TEST(StatsJson, BatchSummarySerialized) {
  const auto g = CsrGraph::from_edges(make_grid(8));
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto roots = sample_roots(g, 2, 1);
  const BatchSummary summary =
      solver.solve_batch(roots, SsspOptions::opt(5));
  std::ostringstream os;
  write_json(os, summary);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"num_roots\":2"), std::string::npos);
  EXPECT_NE(j.find("\"harmonic_mean_gteps\":"), std::string::npos);
  EXPECT_NE(j.find("\"per_root\":[{"), std::string::npos);
  // Braces balance.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
}

}  // namespace
}  // namespace parsssp
