// The online auto-tuner (core/auto_tune.hpp, docs/STEPPING.md). Contract
// under test: TunedConfig::apply only touches engine-selection fields, the
// decision table is incumbent-first and deterministic, tuning is a pure
// function of (graph, probe root) — same inputs => same TunedConfig, bit
// for bit — learned configs persist per version, and the serve-layer
// auto_tune flag rewrites cold default-algorithm queries without changing
// their answers.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/auto_tune.hpp"
#include "core/options.hpp"
#include "core/solver.hpp"
#include "graph/builders.hpp"
#include "graph/rmat.hpp"
#include "obs/metrics.hpp"
#include "serve/query_engine.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph(std::uint64_t seed = 3) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

// --- TunedConfig -----------------------------------------------------------

TEST(TunedConfig, ApplyOnlyTouchesEngineSelectionFields) {
  SsspOptions base = SsspOptions::opt(25);
  base.track_parents = true;
  base.canonical_parents = true;
  base.data_path = DataPath::kReference;
  base.cost_model.t_relax_ns = 99.0;

  const TunedConfig tc{SsspAlgo::kRho, 13, 777, 2};
  const SsspOptions out = tc.apply(base);
  EXPECT_EQ(out.algo, SsspAlgo::kRho);
  EXPECT_EQ(out.delta, 13u);
  EXPECT_EQ(out.rho, 777u);
  EXPECT_EQ(out.radius_k, 2u);
  // The client's fields survive the rewrite.
  EXPECT_TRUE(out.track_parents);
  EXPECT_TRUE(out.canonical_parents);
  EXPECT_EQ(out.data_path, DataPath::kReference);
  EXPECT_EQ(out.cost_model.t_relax_ns, 99.0);
}

TEST(TunedConfig, NamesAreStable) {
  EXPECT_EQ((TunedConfig{SsspAlgo::kBucketSync, 25, 2048, 4}.name()),
            "opt-d25");
  EXPECT_EQ((TunedConfig{SsspAlgo::kRho, 25, 2048, 4}.name()),
            "rho-2048-d25");
  EXPECT_EQ((TunedConfig{SsspAlgo::kDeltaStar, 4, 2048, 4}.name()),
            "dstar-d4");
  EXPECT_EQ((TunedConfig{SsspAlgo::kRadius, 25, 2048, 2}.name()),
            "radius-k2-d25");
}

// --- Decision table --------------------------------------------------------

TEST(TunerShortlist, IncumbentComesFirstInEveryRegime) {
  for (double skew : {1.0, 100.0}) {
    for (std::uint64_t buckets : {std::uint64_t{4}, std::uint64_t{500}}) {
      GraphProfile p;
      p.degree_skew = skew;
      p.probe_buckets = buckets;
      const auto list = tuner_shortlist(p, 25);
      ASSERT_GE(list.size(), 2u);
      EXPECT_EQ(list[0].algo, SsspAlgo::kBucketSync);
      EXPECT_EQ(list[0].delta, 25u);
    }
  }
}

TEST(TunerShortlist, HighSkewShortlistsBatchingRules) {
  GraphProfile p;
  p.degree_skew = 64.0;
  bool has_rho = false;
  for (const TunedConfig& c : tuner_shortlist(p, 25)) {
    has_rho |= c.algo == SsspAlgo::kRho;
    EXPECT_NE(c.algo, SsspAlgo::kRadius);
  }
  EXPECT_TRUE(has_rho);
}

TEST(TunerShortlist, DeepLowSkewShortlistsRadiusRules) {
  GraphProfile p;
  p.degree_skew = 2.0;
  p.probe_buckets = 400;
  bool has_radius = false;
  for (const TunedConfig& c : tuner_shortlist(p, 25)) {
    has_radius |= c.algo == SsspAlgo::kRadius;
    EXPECT_NE(c.algo, SsspAlgo::kRho);
  }
  EXPECT_TRUE(has_radius);
}

// --- Profiling -------------------------------------------------------------

TEST(GraphProfile, CapturesSkewAndProbeShape) {
  const CsrGraph star = CsrGraph::from_edges(make_star(64));
  GraphProfile p = profile_graph(star);
  EXPECT_EQ(p.vertices, 65u);
  EXPECT_GT(p.degree_skew, 8.0);  // hub degree 64 vs mean < 2

  SsspStats probe;
  probe.short_relaxations = 2 * p.arcs;
  probe.buckets = 10;
  probe.phases = 30;
  profile_probe(p, probe);
  EXPECT_DOUBLE_EQ(p.relax_ratio, 2.0);
  EXPECT_EQ(p.probe_buckets, 10u);
  EXPECT_DOUBLE_EQ(p.phases_per_bucket, 3.0);
  EXPECT_GT(p.mean_frontier, 0.0);
}

// --- AutoTuner -------------------------------------------------------------

TEST(AutoTuner, SameGraphAndSeedYieldTheSameConfig) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const auto probe = [&](const SsspOptions& o) {
    return solver.solve(7, o).stats;
  };
  AutoTuner a, b;
  const TunedConfig ca = a.tune(1, g, SsspOptions::opt(25), probe);
  const TunedConfig cb = b.tune(1, g, SsspOptions::opt(25), probe);
  EXPECT_EQ(ca, cb) << ca.name() << " vs " << cb.name();
  ASSERT_TRUE(a.learned(1).has_value());
  EXPECT_EQ(*a.learned(1), ca);
}

TEST(AutoTuner, LearnedVersionsAreNotReprobed) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  int probes = 0;
  const auto probe = [&](const SsspOptions& o) {
    ++probes;
    return solver.solve(3, o).stats;
  };
  AutoTuner tuner;
  const TunedConfig first = tuner.tune(9, g, SsspOptions::opt(25), probe);
  const int paid = probes;
  EXPECT_GE(paid, 2);  // incumbent + at least one challenger
  EXPECT_EQ(tuner.tune(9, g, SsspOptions::opt(25), probe), first);
  EXPECT_EQ(probes, paid);  // cache hit: no new solves
  EXPECT_EQ(tuner.tunes(), 1u);

  // A new version tunes again; forget() reopens an old one.
  tuner.tune(10, g, SsspOptions::opt(25), probe);
  EXPECT_EQ(tuner.tunes(), 2u);
  tuner.forget(9);
  EXPECT_FALSE(tuner.learned(9).has_value());
}

TEST(AutoTuner, PublishesProfileAndDecisionMetrics) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  MetricsRegistry metrics;
  AutoTuner tuner(&metrics);
  tuner.tune(1, g, SsspOptions::opt(25),
             [&](const SsspOptions& o) { return solver.solve(0, o).stats; });
  const MetricsSnapshot snap = metrics.snapshot();
  std::uint64_t tunes = 0, probe_solves = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "tuner.tunes") tunes = c.value;
    if (c.name == "tuner.probe_solves") probe_solves = c.value;
  }
  EXPECT_EQ(tunes, 1u);
  EXPECT_GE(probe_solves, 2u);
  bool saw_skew = false;
  for (const auto& gv : snap.gauges) saw_skew |= gv.name == "tuner.degree_skew";
  EXPECT_TRUE(saw_skew);
}

// --- Serve-layer routing ---------------------------------------------------

TEST(AutoTuneServe, ColdDefaultQueriesAreTunedAndBitIdentical) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 3}});
  MetricsRegistry metrics;
  ServeConfig config;
  config.machine.num_ranks = 3;
  config.auto_tune = true;
  config.metrics = &metrics;
  QueryEngine engine(g, config);

  const auto tunes = [&metrics]() -> std::uint64_t {
    for (const auto& c : metrics.snapshot().counters) {
      if (c.name == "tuner.tunes") return c.value;
    }
    return 0;
  };

  const SsspOptions options = SsspOptions::opt(25);
  const QueryResult first = engine.query(17, options);
  EXPECT_EQ(first.answer->dist, solver.solve(17, options).dist);
  EXPECT_EQ(tunes(), 1u);

  // Same version: the learned config is reused, not re-probed, and the
  // answer stays bit-identical whatever engine it routed to.
  const QueryResult second = engine.query(23, options);
  EXPECT_EQ(second.answer->dist, solver.solve(23, options).dist);
  EXPECT_EQ(tunes(), 1u);

  // Cached under the client's own signature.
  EXPECT_TRUE(engine.query(17, options).from_cache);
  EXPECT_EQ(tunes(), 1u);
}

TEST(AutoTuneServe, ExplicitEngineChoicesAreNeverRewritten) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  MetricsRegistry metrics;
  ServeConfig config;
  config.machine.num_ranks = 2;
  config.auto_tune = true;
  config.metrics = &metrics;
  QueryEngine engine(g, config);

  // An explicit stepping request runs as asked — no probe pass.
  const SsspOptions options = SsspOptions::radius_stepping(2);
  const QueryResult r = engine.query(17, options);
  EXPECT_EQ(r.answer->dist, solver.solve(17, options).dist);
  EXPECT_GT(r.answer->stats.stepping_relaxations, 0u);
  for (const auto& c : metrics.snapshot().counters) {
    if (c.name == "tuner.tunes") EXPECT_EQ(c.value, 0u);
  }
}

}  // namespace
}  // namespace parsssp
