#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph small() {
  EdgeList list;
  list.add_edge(0, 1, 2);
  list.add_edge(1, 2, 3);
  return CsrGraph::from_edges(list);
}

TEST(CompareDistances, Identical) {
  const std::vector<dist_t> d{0, 2, 5};
  const auto r = compare_distances(d, d);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.mismatches, 0u);
}

TEST(CompareDistances, CountsMismatches) {
  const std::vector<dist_t> a{0, 2, 5};
  const std::vector<dist_t> b{0, 3, 6};
  const auto r = compare_distances(a, b);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.mismatches, 2u);
  EXPECT_FALSE(r.message.empty());
}

TEST(CompareDistances, SizeMismatch) {
  const auto r = compare_distances({0}, {0, 1});
  EXPECT_FALSE(r.ok);
}

TEST(Invariants, CorrectDistancesPass) {
  const auto g = small();
  const auto r = check_sssp_invariants(g, 0, dijkstra_distances(g, 0));
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Invariants, BadRootDetected) {
  const auto g = small();
  auto d = dijkstra_distances(g, 0);
  d[0] = 5;
  const auto r = check_sssp_invariants(g, 0, d);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.bad_root, 1u);
}

TEST(Invariants, TriangleViolationDetected) {
  const auto g = small();
  auto d = dijkstra_distances(g, 0);
  d[2] = 100;  // too large: edge (1,2,3) gives 5
  const auto r = check_sssp_invariants(g, 0, d);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.violated_edges, 0u);
}

TEST(Invariants, ReachabilityMismatchDetected) {
  EdgeList list(4);
  list.add_edge(0, 1, 1);
  const auto g = CsrGraph::from_edges(list);
  std::vector<dist_t> d{0, 1, 7, kInfDist};  // vertex 2 is not reachable
  const auto r = check_sssp_invariants(g, 0, d);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.reach_mismatch, 0u);
}

TEST(Invariants, TooShortDistanceCaughtByOracle) {
  // d(2) = 4 < true 5 satisfies the triangle inequality at every edge out
  // of reached vertices? No: edge (1,2) gives d(2) >= ... actually a too-
  // small value violates nothing locally, which is exactly why the oracle
  // comparison exists.
  const auto g = small();
  auto d = dijkstra_distances(g, 0);
  d[2] = 4;
  const auto r = validate_against_dijkstra(g, 0, d);
  EXPECT_FALSE(r.ok);
}

TEST(ValidateAgainstDijkstra, PassesOnOracleOutput) {
  const auto g = small();
  const auto r = validate_against_dijkstra(g, 0, dijkstra_distances(g, 0));
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace parsssp
