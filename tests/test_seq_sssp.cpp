#include <gtest/gtest.h>

#include "graph/rmat.hpp"
#include "seq/bellman_ford.hpp"
#include "seq/delta_stepping.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph small_weighted() {
  //      1 --2-- 2
  //     /         \ 5
  //    0 ----9---- 3 --1-- 4
  EdgeList list;
  list.add_edge(0, 1, 2);
  list.add_edge(1, 2, 2);
  list.add_edge(2, 3, 5);
  list.add_edge(0, 3, 9);
  list.add_edge(3, 4, 1);
  return CsrGraph::from_edges(list);
}

TEST(Dijkstra, SmallGraphDistances) {
  const auto g = small_weighted();
  const auto d = dijkstra_distances(g, 0);
  EXPECT_EQ(d, (std::vector<dist_t>{0, 2, 4, 9, 10}));
}

TEST(Dijkstra, RelaxesEveryEdgeTwice) {
  const auto g = small_weighted();
  const auto r = dijkstra(g, 0);
  // Paper §II-B: Dijkstra relaxes each edge once per direction.
  EXPECT_EQ(r.relaxations, 2 * g.num_undirected_edges());
}

TEST(Dijkstra, UnreachableVertices) {
  EdgeList list(4);
  list.add_edge(0, 1, 3);
  const auto g = CsrGraph::from_edges(list);
  const auto d = dijkstra_distances(g, 0);
  EXPECT_EQ(d[2], kInfDist);
  EXPECT_EQ(d[3], kInfDist);
}

TEST(Dijkstra, RootOutOfRangeAllInf) {
  const auto g = small_weighted();
  const auto d = dijkstra_distances(g, 99);
  for (const auto x : d) EXPECT_EQ(x, kInfDist);
}

TEST(BellmanFord, MatchesDijkstra) {
  const auto g = small_weighted();
  EXPECT_EQ(bellman_ford(g, 0).dist, dijkstra_distances(g, 0));
}

TEST(BellmanFord, PhasesBoundedByTreeDepth) {
  // Path of 10 vertices: the active-vertex formulation runs one round per
  // tree level (9 productive rounds) plus the final round in which the last
  // vertex relaxes its edges without changing anything -> 10 phases, i.e.
  // the number of levels of the shortest-path tree.
  EdgeList list;
  for (vid_t i = 0; i < 9; ++i) list.add_edge(i, i + 1, 5);
  const auto g = CsrGraph::from_edges(list);
  const auto r = bellman_ford(g, 0);
  EXPECT_EQ(r.phases, 10u);
  EXPECT_EQ(r.buckets, 1u);
}

TEST(BellmanFord, MayRelaxMoreThanDijkstra) {
  RmatConfig cfg;
  cfg.scale = 9;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  const auto bf = bellman_ford(g, 0);
  const auto dj = dijkstra(g, 0);
  EXPECT_EQ(bf.dist, dj.dist);
  EXPECT_GE(bf.relaxations, dj.relaxations);
}

TEST(DeltaStepping, MatchesDijkstraAcrossDeltas) {
  const auto g = small_weighted();
  const auto expected = dijkstra_distances(g, 0);
  for (const std::uint32_t delta : {1u, 2u, 5u, 25u, 1000u}) {
    for (const bool classify : {false, true}) {
      const auto r = delta_stepping(g, 0, {delta, classify});
      EXPECT_EQ(r.dist, expected)
          << "delta=" << delta << " classify=" << classify;
    }
  }
}

TEST(DeltaStepping, DeltaOneBucketsEqualDistinctDistances) {
  const auto g = small_weighted();
  const auto r = delta_stepping(g, 0, {1, true});
  // Distinct finite distances from root 0: {0, 2, 4, 9, 10} -> 5 buckets.
  EXPECT_EQ(r.buckets, 5u);
}

TEST(DeltaStepping, HugeDeltaActsLikeBellmanFord) {
  const auto g = small_weighted();
  const auto r = delta_stepping(g, 0, {1u << 30, false});
  EXPECT_EQ(r.buckets, 1u);
  EXPECT_EQ(r.dist, dijkstra_distances(g, 0));
}

TEST(DeltaStepping, WorkTradeoff) {
  // Paper Fig 3: work(Dijkstra) <= work(Delta) <= work(Bellman-Ford),
  // phases(BF) <= phases(Delta) <= phases(Dijkstra). Check on an R-MAT.
  RmatConfig cfg;
  cfg.scale = 10;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  const auto dj = delta_stepping(g, 0, {1, true});
  const auto mid = delta_stepping(g, 0, {25, true});
  const auto bf = bellman_ford(g, 0);
  EXPECT_LE(mid.buckets, dj.buckets);
  EXPECT_GE(mid.buckets, bf.buckets);
  EXPECT_GE(bf.relaxations, dj.relaxations);
}

TEST(DeltaStepping, ZeroWeightEdgesHandled) {
  // Zero weights appear on proxy edges from vertex splitting.
  EdgeList list;
  list.add_edge(0, 1, 0);
  list.add_edge(1, 2, 3);
  list.add_edge(2, 3, 0);
  const auto g = CsrGraph::from_edges(list);
  for (const std::uint32_t delta : {1u, 5u}) {
    const auto r = delta_stepping(g, 0, {delta, true});
    EXPECT_EQ(r.dist, (std::vector<dist_t>{0, 0, 3, 3})) << delta;
  }
}

TEST(DeltaStepping, DisconnectedGraph) {
  EdgeList list(6);
  list.add_edge(0, 1, 4);
  list.add_edge(3, 4, 2);
  const auto g = CsrGraph::from_edges(list);
  const auto r = delta_stepping(g, 0, {10, true});
  EXPECT_EQ(r.dist[1], 4u);
  EXPECT_EQ(r.dist[3], kInfDist);
  EXPECT_EQ(r.dist[5], kInfDist);
}

TEST(SeqSsspProperty, AllAlgorithmsAgreeOnRmat) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    RmatConfig cfg;
    cfg.scale = 8;
    cfg.edge_factor = 8;
    cfg.seed = seed;
    const auto g = CsrGraph::from_edges(generate_rmat(cfg));
    const auto expected = dijkstra_distances(g, 0);
    EXPECT_EQ(bellman_ford(g, 0).dist, expected) << seed;
    for (const std::uint32_t delta : {1u, 10u, 64u}) {
      EXPECT_EQ(delta_stepping(g, 0, {delta, true}).dist, expected)
          << "seed=" << seed << " delta=" << delta;
    }
  }
}

}  // namespace
}  // namespace parsssp
