// Determinism and stress properties that cut across modules: multi-lane
// runs must be bit-identical to single-lane runs, BFS must be insensitive
// to its direction thresholds, large exchanges must survive intact, and
// SNAP files must round-trip through the filesystem.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/bfs_engine.hpp"
#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "graph/snap_io.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph(std::uint32_t scale, std::uint64_t seed = 1) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

TEST(Determinism, LanesDoNotChangeDistancesOrCounters) {
  const auto g = rmat_graph(9, 31);
  const vid_t root = sample_roots(g, 1, 1).at(0);
  std::vector<dist_t> ref_dist;
  std::uint64_t ref_relax = 0;
  for (const unsigned lanes : {1u, 2u, 4u}) {
    Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = lanes}});
    const auto r = solver.solve(root, SsspOptions::lb_opt(25, 16));
    if (ref_dist.empty()) {
      ref_dist = r.dist;
      ref_relax = r.stats.total_relaxations();
    } else {
      EXPECT_EQ(r.dist, ref_dist) << "lanes=" << lanes;
      EXPECT_EQ(r.stats.total_relaxations(), ref_relax)
          << "lanes=" << lanes;
    }
  }
}

TEST(Determinism, RepeatedThreadedRunsIdentical) {
  const auto g = rmat_graph(9, 37);
  const vid_t root = sample_roots(g, 1, 1).at(0);
  Solver solver(g, {.machine = {.num_ranks = 8, .lanes_per_rank = 2}});
  const auto first = solver.solve(root, SsspOptions::opt(25));
  for (int i = 0; i < 5; ++i) {
    const auto again = solver.solve(root, SsspOptions::opt(25));
    EXPECT_EQ(again.dist, first.dist);
    EXPECT_EQ(again.stats.total_relaxations(),
              first.stats.total_relaxations());
    EXPECT_EQ(again.stats.phases, first.stats.phases);
    EXPECT_DOUBLE_EQ(again.stats.model_time_s, first.stats.model_time_s);
  }
}

TEST(Determinism, BfsThresholdsChangeStepsNotLevels) {
  const auto g = rmat_graph(10, 41);
  const vid_t root = sample_roots(g, 1, 1).at(0);
  BfsSolver solver(g, {.num_ranks = 4});
  const auto reference = bfs_levels(g, root);
  for (const double alpha : {0.05, 0.25, 1.0}) {
    for (const double beta : {1.0 / 256, 1.0 / 16}) {
      BfsOptions o;
      o.alpha = alpha;
      o.beta = beta;
      EXPECT_EQ(solver.solve(root, o).level, reference)
          << "alpha=" << alpha << " beta=" << beta;
    }
  }
}

TEST(Stress, LargeExchangePayloadIntact) {
  constexpr rank_t R = 4;
  Machine m({.num_ranks = R});
  m.run([&](RankCtx& ctx) {
    std::vector<std::vector<std::uint64_t>> out(R);
    for (rank_t d = 0; d < R; ++d) {
      out[d].resize(50'000);
      for (std::size_t i = 0; i < out[d].size(); ++i) {
        out[d][i] = ctx.rank() * 1'000'000ULL + d * 100'000ULL + i;
      }
    }
    const auto in = ctx.exchange(std::move(out), PhaseKind::kShortPhase);
    for (rank_t s = 0; s < R; ++s) {
      ASSERT_EQ(in[s].size(), 50'000u);
      for (std::size_t i = 0; i < in[s].size(); ++i) {
        ASSERT_EQ(in[s][i],
                  s * 1'000'000ULL + ctx.rank() * 100'000ULL + i);
      }
    }
  });
}

TEST(Stress, ManySmallSolvesNoStateLeak) {
  const auto g = rmat_graph(8, 43);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const auto roots = sample_roots(g, 4, 1);
  std::vector<std::vector<dist_t>> firsts;
  for (const vid_t root : roots) {
    firsts.push_back(solver.solve(root, SsspOptions::opt(25)).dist);
  }
  // Interleave in a different order; results must not depend on history.
  for (std::size_t i = roots.size(); i-- > 0;) {
    EXPECT_EQ(solver.solve(roots[i], SsspOptions::opt(25)).dist, firsts[i]);
  }
}

TEST(SnapDisk, FileRoundTrip) {
  RmatConfig cfg;
  cfg.scale = 7;
  EdgeList list = generate_rmat(cfg);
  list.dedup_and_strip_self_loops();

  const std::string path = ::testing::TempDir() + "/snap_roundtrip.txt";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    write_snap_text(out, list);
  }
  const EdgeList back = load_snap_file(path);
  EXPECT_EQ(back.edges(), list.edges());
  std::remove(path.c_str());
}

TEST(SnapDisk, BinaryFileRoundTrip) {
  RmatConfig cfg;
  cfg.scale = 7;
  const EdgeList list = generate_rmat(cfg);
  const std::string path = ::testing::TempDir() + "/snap_roundtrip.bin";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
    write_binary(out, list);
  }
  std::ifstream in(path, std::ios::binary);
  const EdgeList back = read_binary(in);
  EXPECT_EQ(back.edges(), list.edges());
  EXPECT_EQ(back.num_vertices(), list.num_vertices());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace parsssp
