#include "core/push_pull.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

CsrGraph long_edge_graph() {
  // All weights >= delta=10 so every arc is long.
  EdgeList list;
  list.add_edge(0, 1, 10);
  list.add_edge(0, 2, 20);
  list.add_edge(0, 3, 30);
  list.add_edge(1, 2, 15);
  return CsrGraph::from_edges(list);
}

struct Fixture {
  CsrGraph g = long_edge_graph();
  BlockPartition part{4, 1};
  LocalEdgeView view = LocalEdgeView::build(g, part, 0, 10);
};

TEST(PushPullEstimate, PushVolumeSumsLongDegrees) {
  Fixture f;
  const std::vector<dist_t> dist{5, kInfDist, kInfDist, kInfDist};
  const std::vector<char> settled{0, 0, 0, 0};
  const std::vector<vid_t> members{0};  // vertex 0 in bucket 0
  const auto est = estimate_push_pull_local(
      f.view, dist, settled, members, 0, 10, EstimatorKind::kExact, 30,
      /*include_short=*/false);
  EXPECT_EQ(est.push_volume, 3u);  // deg(0) = 3 long arcs
}

TEST(PushPullEstimate, PullCountsUnreachedFully) {
  Fixture f;
  const std::vector<dist_t> dist{5, kInfDist, kInfDist, kInfDist};
  const std::vector<char> settled{0, 0, 0, 0};
  const std::vector<vid_t> members{0};
  const auto est = estimate_push_pull_local(
      f.view, dist, settled, members, 0, 10, EstimatorKind::kExact, 30,
      false);
  // Vertices 1,2,3 are in B_inf; all their long arcs qualify:
  // deg(1)=2, deg(2)=2, deg(3)=1 -> 5 requests.
  EXPECT_EQ(est.pull_requests, 5u);
}

TEST(PushPullEstimate, PullBoundFiltersByWeight) {
  Fixture f;
  // Vertex 2 has tentative distance 25 (bucket 2 for delta=10). For the
  // current bucket k=0, bound = 25; arcs of 2: weights {20, 15} -> both < 25.
  // Vertex 3 dist 35 (bucket 3), bound 35, arc weight 30 qualifies.
  const std::vector<dist_t> dist{5, 12, 25, 35};
  const std::vector<char> settled{0, 0, 0, 0};
  const std::vector<vid_t> members{0};
  const auto est = estimate_push_pull_local(
      f.view, dist, settled, members, 0, 10, EstimatorKind::kExact, 30,
      false);
  // Vertex 1 (bucket 1, bound 12): arcs {10, 15} -> only 10 qualifies.
  EXPECT_EQ(est.pull_requests, 1u + 2u + 1u);
}

TEST(PushPullEstimate, SettledAndCurrentBucketExcludedFromPull) {
  Fixture f;
  const std::vector<dist_t> dist{5, 8, 25, kInfDist};
  std::vector<char> settled{0, 0, 0, 1};  // 3 settled (artificially)
  const std::vector<vid_t> members{0, 1};  // both in bucket 0
  const auto est = estimate_push_pull_local(
      f.view, dist, settled, members, 0, 10, EstimatorKind::kExact, 30,
      false);
  // Only vertex 2 is an unsettled later-bucket vertex.
  EXPECT_EQ(est.pull_requests, 2u);
}

TEST(ExpectedRequests, MatchesClosedForm) {
  // long_degree=10, d(v)=100, k=0, delta=10, wmax=100:
  // bound=100, p=(100-10)/(100-10+1)=90/91.
  const double e = expected_requests_for_vertex(10, 100, 0, 10, 100);
  EXPECT_NEAR(e, 10.0 * 90.0 / 91.0, 1e-9);
}

TEST(ExpectedRequests, InfDistanceCountsAll) {
  EXPECT_DOUBLE_EQ(expected_requests_for_vertex(7, kInfDist, 3, 10, 100),
                   7.0);
}

TEST(ExpectedRequests, TightBoundGivesZero) {
  // bound = d - k*delta = 10 = delta -> no long edge can qualify.
  EXPECT_DOUBLE_EQ(expected_requests_for_vertex(5, 30, 2, 10, 100), 0.0);
}

TEST(ExpectedRequests, CappedAtDegree) {
  const double e = expected_requests_for_vertex(4, 1000000, 0, 10, 100);
  EXPECT_DOUBLE_EQ(e, 4.0);
}

TEST(PushPullEstimate, ExpectationTracksExactOnUniformWeights) {
  // Build a vertex with many long arcs of uniform weights and check the two
  // estimators agree within a loose tolerance.
  EdgeList list;
  for (vid_t i = 1; i <= 200; ++i) {
    list.add_edge(0, i, static_cast<weight_t>(10 + (i * 37) % 91));  // 10..100
  }
  const auto g = CsrGraph::from_edges(list);
  const BlockPartition part(g.num_vertices(), 1);
  const auto view = LocalEdgeView::build(g, part, 0, 10);

  std::vector<dist_t> dist(g.num_vertices(), kInfDist);
  dist[0] = 60;  // bucket 6; bound for k=0 is 60
  std::vector<char> settled(g.num_vertices(), 1);
  settled[0] = 0;
  const std::vector<vid_t> members;
  const auto exact = estimate_push_pull_local(
      view, dist, settled, members, 0, 10, EstimatorKind::kExact, 100, false);
  const auto approx = estimate_push_pull_local(
      view, dist, settled, members, 0, 10, EstimatorKind::kExpectation, 100,
      false);
  EXPECT_GT(exact.pull_requests, 0u);
  const double ratio = static_cast<double>(approx.pull_requests) /
                       static_cast<double>(exact.pull_requests);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

TEST(Decision, PicksLowerVolume) {
  PushPullGlobal g;
  g.push_volume = 1000;
  g.pull_requests = 100;  // pull volume 200
  g.push_max_rank = 0;
  g.pull_max_rank = 0;
  EXPECT_TRUE(decide_push_pull(g, 4, 0.0).pull);

  g.push_volume = 100;
  g.pull_requests = 1000;
  EXPECT_FALSE(decide_push_pull(g, 4, 0.0).pull);
}

TEST(Decision, LoadTermCanFlipChoice) {
  PushPullGlobal g;
  // Volumes slightly favour pull, but pull's traffic all sits on one rank.
  g.push_volume = 420;
  g.pull_requests = 200;  // pull volume 400
  g.push_max_rank = 40;   // push nicely balanced over ~10 ranks
  g.pull_max_rank = 200;  // pull concentrated
  EXPECT_TRUE(decide_push_pull(g, 8, 0.0).pull);
  EXPECT_FALSE(decide_push_pull(g, 8, 1.0).pull);
}

TEST(Decision, CostsReported) {
  PushPullGlobal g;
  g.push_volume = 10;
  g.pull_requests = 10;
  const auto d = decide_push_pull(g, 1, 0.0);
  EXPECT_DOUBLE_EQ(d.push_cost, 10.0);
  EXPECT_DOUBLE_EQ(d.pull_cost, 20.0);
  EXPECT_FALSE(d.pull);
}

}  // namespace
}  // namespace parsssp
