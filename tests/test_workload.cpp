// Workload streams: determinism, arrival-time structure, root-domain
// bounds, Zipf skew, and the percentile summary used in SLO reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "serve/workload.hpp"

namespace parsssp {
namespace {

TEST(Workload, StreamsAreDeterministic) {
  WorkloadConfig config;
  config.num_queries = 200;
  config.rate_qps = 1000;
  config.dist = RootDist::kZipf;
  config.seed = 42;
  const auto a = make_open_loop_stream(config, 1 << 10);
  const auto b = make_open_loop_stream(config, 1 << 10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].root, b[i].root);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
  }
  config.seed = 43;
  const auto c = make_open_loop_stream(config, 1 << 10);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].root != c[i].root;
  }
  EXPECT_TRUE(differs) << "different seeds must give different streams";
}

TEST(Workload, OpenLoopArrivalsAreMonotoneAtRoughlyTheRequestedRate) {
  WorkloadConfig config;
  config.num_queries = 2000;
  config.rate_qps = 500;
  const auto stream = make_open_loop_stream(config, 1 << 12);
  ASSERT_EQ(stream.size(), 2000u);
  double prev = -1;
  for (const auto& ev : stream) {
    EXPECT_GE(ev.arrival_s, prev);
    prev = ev.arrival_s;
  }
  // Poisson arrivals: total span ~ n/rate = 4s; allow a wide band.
  EXPECT_GT(stream.back().arrival_s, 2.0);
  EXPECT_LT(stream.back().arrival_s, 8.0);
}

TEST(Workload, ClosedLoopArrivalsAreAllZero) {
  WorkloadConfig config;
  config.num_queries = 50;
  config.rate_qps = 0;
  for (const auto& ev : make_open_loop_stream(config, 1 << 8)) {
    EXPECT_EQ(ev.arrival_s, 0.0);
  }
}

TEST(Workload, RootsComeFromTheConfiguredDomain) {
  WorkloadConfig config;
  config.num_queries = 500;
  config.num_roots_domain = 8;
  const auto stream = make_open_loop_stream(config, 1 << 12);
  std::unordered_map<vid_t, std::size_t> counts;
  for (const auto& ev : stream) {
    EXPECT_LT(ev.root, vid_t{1} << 12);
    ++counts[ev.root];
  }
  EXPECT_LE(counts.size(), 8u);
  EXPECT_GE(counts.size(), 2u);
}

TEST(Workload, ZipfIsMoreSkewedThanUniform) {
  const auto top_share = [](RootDist dist) {
    WorkloadConfig config;
    config.num_queries = 4000;
    config.num_roots_domain = 64;
    config.dist = dist;
    config.zipf_s = 1.2;
    const auto stream = make_open_loop_stream(config, 1 << 12);
    std::unordered_map<vid_t, std::size_t> counts;
    for (const auto& ev : stream) ++counts[ev.root];
    std::size_t best = 0;
    for (const auto& [root, n] : counts) best = std::max(best, n);
    return static_cast<double>(best) / static_cast<double>(stream.size());
  };
  const double uniform = top_share(RootDist::kUniform);
  const double zipf = top_share(RootDist::kZipf);
  EXPECT_GT(zipf, 2 * uniform)
      << "zipf top root share " << zipf << " vs uniform " << uniform;
}

TEST(Workload, PercentileStatsOrderStatistics) {
  std::vector<double> latencies;
  for (int i = 100; i >= 1; --i) latencies.push_back(i * 1e-3);  // unsorted
  const LatencyStats stats = percentile_stats(std::move(latencies));
  EXPECT_EQ(stats.count, 100u);
  EXPECT_NEAR(stats.mean, 0.0505, 1e-9);
  EXPECT_NEAR(stats.p50, 0.050, 1.5e-3);
  EXPECT_NEAR(stats.p95, 0.095, 1.5e-3);
  EXPECT_NEAR(stats.p99, 0.099, 1.5e-3);
  EXPECT_NEAR(stats.max, 0.100, 1e-9);

  const LatencyStats empty = percentile_stats({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.max, 0.0);
}

// Exactness of the nearest-rank convention: for samples {1ms..n*1ms}, the
// p-th percentile must be the ceil(p*n)-th smallest sample (1-based),
// computed here with a pure-integer reference so a floating-point slip in
// the implementation cannot hide. n sweeps every size from 1 to 100.
TEST(Workload, NearestRankPercentilesAreExactForAllSmallSizes) {
  for (std::size_t n = 1; n <= 100; ++n) {
    std::vector<double> latencies;
    for (std::size_t i = n; i >= 1; --i) {  // reversed: must sort internally
      latencies.push_back(static_cast<double>(i) * 1e-3);
    }
    const LatencyStats stats = percentile_stats(std::move(latencies));
    ASSERT_EQ(stats.count, n);
    const auto expected = [n](std::size_t pp) {
      const std::size_t rank = std::max<std::size_t>(1, (pp * n + 99) / 100);
      return static_cast<double>(rank) * 1e-3;
    };
    EXPECT_EQ(stats.p50, expected(50)) << "p50 at n=" << n;
    EXPECT_EQ(stats.p95, expected(95)) << "p95 at n=" << n;
    EXPECT_EQ(stats.p99, expected(99)) << "p99 at n=" << n;
  }
}

// The specific regression the nearest-rank fix addressed: with 10 samples,
// the old round-half-up interpolation reported the 6th smallest as p50.
TEST(Workload, P50OfTenSamplesIsTheFifthSmallest) {
  std::vector<double> latencies;
  for (int i = 1; i <= 10; ++i) latencies.push_back(i * 1e-3);
  const LatencyStats stats = percentile_stats(std::move(latencies));
  EXPECT_EQ(stats.p50, 5e-3);
  EXPECT_EQ(stats.p99, 10e-3);  // ceil(0.99*10) = 10th
}

}  // namespace
}  // namespace parsssp
