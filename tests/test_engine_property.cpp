// Parameterized property sweep: for every (graph seed, algorithm, rank
// count) combination, the distributed engine must agree bit-for-bit with
// the sequential Dijkstra oracle, and pass the oracle-free invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

enum class Algo {
  kDijkstra,
  kBellmanFord,
  kDel25,
  kPrune25,
  kOpt25,
  kLbOpt25
};

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kDijkstra:
      return "Dijkstra";
    case Algo::kBellmanFord:
      return "BellmanFord";
    case Algo::kDel25:
      return "Del25";
    case Algo::kPrune25:
      return "Prune25";
    case Algo::kOpt25:
      return "Opt25";
    case Algo::kLbOpt25:
      return "LbOpt25";
  }
  return "?";
}

SsspOptions algo_options(Algo a) {
  switch (a) {
    case Algo::kDijkstra:
      return SsspOptions::dijkstra();
    case Algo::kBellmanFord:
      return SsspOptions::bellman_ford();
    case Algo::kDel25:
      return SsspOptions::del(25);
    case Algo::kPrune25:
      return SsspOptions::prune(25);
    case Algo::kOpt25:
      return SsspOptions::opt(25);
    case Algo::kLbOpt25:
      return SsspOptions::lb_opt(25, 16);
  }
  return {};
}

using Param = std::tuple<std::uint64_t /*seed*/, Algo, rank_t>;

class EngineOracleProperty : public ::testing::TestWithParam<Param> {};

TEST_P(EngineOracleProperty, MatchesDijkstra) {
  const auto [seed, algo, ranks] = GetParam();
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  const auto roots = sample_roots(g, 2, seed);
  Solver solver(g, {.machine = {.num_ranks = ranks}});
  for (const vid_t root : roots) {
    const auto r = solver.solve(root, algo_options(algo));
    const auto report = validate_against_dijkstra(g, root, r.dist);
    EXPECT_TRUE(report.ok)
        << algo_name(algo) << " seed=" << seed << " ranks=" << ranks
        << " root=" << root << ": " << report.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineOracleProperty,
    ::testing::Combine(
        ::testing::Values(1ULL, 2ULL, 3ULL),
        ::testing::Values(Algo::kDijkstra, Algo::kBellmanFord, Algo::kDel25,
                          Algo::kPrune25, Algo::kOpt25, Algo::kLbOpt25),
        ::testing::Values(rank_t{1}, rank_t{3}, rank_t{8})),
    [](const ::testing::TestParamInfo<Param>& tpi) {
      return "seed" + std::to_string(std::get<0>(tpi.param)) + "_" +
             algo_name(std::get<1>(tpi.param)) + "_ranks" +
             std::to_string(std::get<2>(tpi.param));
    });

// Delta sweep at fixed algorithm shape: classification+IOS+pruning must be
// correct for any bucket width, including widths beyond the weight range.
class DeltaSweepProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DeltaSweepProperty, PruneCorrectForAnyDelta) {
  const std::uint32_t delta = GetParam();
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = 5;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  const auto expected = dijkstra_distances(g, 0);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  EXPECT_EQ(solver.solve(0, SsspOptions::prune(delta)).dist, expected);
  EXPECT_EQ(solver.solve(0, SsspOptions::opt(delta)).dist, expected);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweepProperty,
                         ::testing::Values(1u, 2u, 5u, 10u, 25u, 40u, 64u,
                                           255u, 256u, 10000u));

// Message-order independence: the distance fold is a min, so shuffling rank
// counts (which shuffles message arrival grouping) never changes results.
TEST(EngineOrderIndependence, RankCountInvariance) {
  RmatConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 8;
  cfg.seed = 23;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  std::vector<dist_t> reference;
  for (const rank_t ranks : {1u, 2u, 4u, 8u, 16u}) {
    Solver solver(g, {.machine = {.num_ranks = ranks}});
    const auto r = solver.solve(7, SsspOptions::opt(25));
    if (reference.empty()) {
      reference = r.dist;
    } else {
      EXPECT_EQ(r.dist, reference) << "ranks=" << ranks;
    }
  }
}

// Relaxation counters must also be rank-count invariant (they count
// algorithmic relax operations, not transport artifacts).
TEST(EngineOrderIndependence, RelaxCountsRankInvariant) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = 29;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  std::uint64_t reference = 0;
  for (const rank_t ranks : {1u, 2u, 8u}) {
    Solver solver(g, {.machine = {.num_ranks = ranks}});
    const auto r = solver.solve(3, SsspOptions::del(25));
    if (reference == 0) {
      reference = r.stats.total_relaxations();
    } else {
      EXPECT_EQ(r.stats.total_relaxations(), reference) << "ranks=" << ranks;
    }
  }
}

}  // namespace
}  // namespace parsssp
