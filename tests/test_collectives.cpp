#include "runtime/collectives.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace parsssp {
namespace {

// Runs `body(rank)` on `ranks` threads sharing one CollectiveContext.
template <typename Body>
void run_ranks(rank_t ranks, CollectiveContext& ctx, Body body) {
  std::vector<std::thread> threads;
  for (rank_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] { body(r); });
  }
  for (auto& t : threads) t.join();
  (void)ctx;
}

TEST(Collectives, AllreduceSum) {
  constexpr rank_t R = 4;
  CollectiveContext ctx(R);
  std::vector<std::uint64_t> results(R);
  run_ranks(R, ctx, [&](rank_t r) {
    results[r] = ctx.allreduce<std::uint64_t>(r, r + 1, SumOp{});
  });
  for (const auto v : results) EXPECT_EQ(v, 1u + 2 + 3 + 4);
}

TEST(Collectives, AllreduceMinMax) {
  constexpr rank_t R = 5;
  CollectiveContext ctx(R);
  std::vector<std::uint64_t> mins(R), maxs(R);
  run_ranks(R, ctx, [&](rank_t r) {
    mins[r] = ctx.allreduce<std::uint64_t>(r, 100 - r, MinOp{});
    maxs[r] = ctx.allreduce<std::uint64_t>(r, 100 - r, MaxOp{});
  });
  for (const auto v : mins) EXPECT_EQ(v, 96u);
  for (const auto v : maxs) EXPECT_EQ(v, 100u);
}

TEST(Collectives, AllreduceOr) {
  constexpr rank_t R = 3;
  CollectiveContext ctx(R);
  std::vector<std::uint64_t> results(R);
  run_ranks(R, ctx, [&](rank_t r) {
    results[r] = ctx.allreduce<std::uint64_t>(r, r == 2 ? 1 : 0, OrOp{});
  });
  for (const auto v : results) EXPECT_EQ(v, 1u);
}

TEST(Collectives, AllreduceStruct) {
  struct Pair {
    std::uint64_t sum;
    std::uint64_t max;
  };
  struct PairOp {
    Pair operator()(const Pair& a, const Pair& b) const {
      return {a.sum + b.sum, std::max(a.max, b.max)};
    }
  };
  constexpr rank_t R = 4;
  CollectiveContext ctx(R);
  std::vector<Pair> results(R);
  run_ranks(R, ctx, [&](rank_t r) {
    results[r] = ctx.allreduce(r, Pair{r, r}, PairOp{});
  });
  for (const auto& p : results) {
    EXPECT_EQ(p.sum, 0u + 1 + 2 + 3);
    EXPECT_EQ(p.max, 3u);
  }
}

TEST(Collectives, Broadcast) {
  constexpr rank_t R = 4;
  CollectiveContext ctx(R);
  std::vector<int> results(R);
  run_ranks(R, ctx, [&](rank_t r) {
    results[r] = ctx.broadcast(r, r == 2 ? 77 : -1, /*root=*/2);
  });
  for (const auto v : results) EXPECT_EQ(v, 77);
}

TEST(Collectives, Allgather) {
  constexpr rank_t R = 3;
  CollectiveContext ctx(R);
  std::vector<std::vector<int>> results(R);
  run_ranks(R, ctx, [&](rank_t r) {
    results[r] = ctx.allgather(r, static_cast<int>(r * 10));
  });
  for (const auto& v : results) {
    EXPECT_EQ(v, (std::vector<int>{0, 10, 20}));
  }
}

TEST(Collectives, RepeatedRoundsStayConsistent) {
  constexpr rank_t R = 4;
  CollectiveContext ctx(R);
  std::vector<std::uint64_t> sums(R, 0);
  run_ranks(R, ctx, [&](rank_t r) {
    for (int round = 0; round < 50; ++round) {
      sums[r] += ctx.allreduce<std::uint64_t>(r, round, SumOp{});
    }
  });
  // Each round reduces to 4*round; total = 4 * (0+..+49).
  for (const auto s : sums) EXPECT_EQ(s, 4u * (49 * 50 / 2));
}

TEST(Collectives, SingleRank) {
  CollectiveContext ctx(1);
  EXPECT_EQ(ctx.allreduce<std::uint64_t>(0, 42, SumOp{}), 42u);
  EXPECT_EQ(ctx.broadcast(0, 7, 0), 7);
}

}  // namespace
}  // namespace parsssp
