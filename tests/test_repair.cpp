// Incremental repair vs fresh solve: the bit-identity contract, fuzzed
// over random insert/delete/reweight batches, algorithm variants, bucket
// widths, rank counts and data-path toggles (mirroring test_data_path.cpp),
// plus targeted disconnect/reconnect and error-path cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "core/solver.hpp"
#include "graph/edge_list.hpp"
#include "graph/rmat.hpp"
#include "update/dynamic_solver.hpp"

namespace parsssp {
namespace {

CsrGraph test_graph(std::uint64_t seed, int scale = 8) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return strip_self_loops(CsrGraph::from_edges(generate_rmat(cfg)));
}

/// Random valid batch: ops never touch the same pair twice, so apply()
/// always succeeds (validity of each op against the live graph is part of
/// what DynamicGraph tests cover; here the subject is repair).
EdgeBatch random_batch(const DynamicGraph& g, std::mt19937_64& rng,
                       std::size_t ops) {
  EdgeBatch batch;
  std::set<std::pair<vid_t, vid_t>> used;
  std::uniform_int_distribution<vid_t> pick(0, g.num_vertices() - 1);
  while (batch.size() < ops) {
    const auto roll = rng() % 4;
    if (roll == 0) {
      vid_t u = pick(rng), v = pick(rng);
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (g.has_edge(u, v) || !used.insert({u, v}).second) continue;
      batch.insert_edge(u, v, static_cast<weight_t>(1 + rng() % 255));
    } else {
      const vid_t u = pick(rng);
      const std::vector<Arc> arcs = g.arcs_of(u);
      if (arcs.empty()) continue;
      const vid_t v = arcs[rng() % arcs.size()].to;
      if (!used.insert(std::minmax(u, v)).second) continue;
      if (roll == 1) {
        batch.delete_edge(u, v);
      } else {
        batch.update_weight(u, v, static_cast<weight_t>(1 + rng() % 255));
      }
    }
  }
  return batch;
}

void expect_identical(const SsspResult& got, const SsspResult& want,
                      const char* what) {
  ASSERT_EQ(got.dist, want.dist) << what << ": distances diverge";
  ASSERT_EQ(got.parent, want.parent) << what << ": parents diverge";
}

/// Repaired result == DynamicSolver fresh solve == static Solver on the
/// materialized graph (an independent code path from the dynamic views).
void check_round(DynamicSolver& solver, vid_t root, const SsspResult& repaired,
                 const SsspOptions& options, rank_t ranks, const char* what) {
  const SsspResult fresh = solver.solve(root, options);
  expect_identical(repaired, fresh, what);

  const CsrGraph materialized = solver.graph().materialize();
  Solver oracle(materialized, {.machine = {.num_ranks = ranks}});
  SsspOptions canon = options;
  canon.canonical_parents = true;
  expect_identical(repaired, oracle.solve(root, canon), what);
}

enum class Algo { kBellmanFord, kDel25, kPrune25, kOpt25 };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kBellmanFord: return "BellmanFord";
    case Algo::kDel25: return "Del25";
    case Algo::kPrune25: return "Prune25";
    case Algo::kOpt25: return "Opt25";
  }
  return "?";
}

SsspOptions algo_options(Algo a) {
  switch (a) {
    case Algo::kBellmanFord: return SsspOptions::bellman_ford();
    case Algo::kDel25: return SsspOptions::del(25);
    case Algo::kPrune25: return SsspOptions::prune(25);
    case Algo::kOpt25: return SsspOptions::opt(25);
  }
  return {};
}

using Param = std::tuple<std::uint64_t /*seed*/, Algo, rank_t>;

class RepairFuzz : public ::testing::TestWithParam<Param> {};

// The headline fuzz: chained random batches, each repaired from the
// previous round's (repaired) result and checked against two fresh-solve
// oracles. Chaining matters — it feeds repair output back in as the prior,
// so a single non-canonical parent or off-by-one distance compounds.
TEST_P(RepairFuzz, RepairedEqualsFreshSolveBitForBit) {
  const auto [seed, algo, ranks] = GetParam();
  DynamicSolver solver(test_graph(seed), {.machine = {.num_ranks = ranks}});
  SsspOptions options = algo_options(algo);
  options.track_parents = true;

  std::mt19937_64 rng(seed * 977 + 1);
  const vid_t root = 1;
  SsspResult prior = solver.solve(root, options);
  for (int round = 0; round < 4; ++round) {
    const AppliedBatch applied =
        solver.apply(random_batch(solver.graph(), rng, 6));
    const std::span<const AppliedBatch> batches(&applied, 1);
    const SsspResult repaired = solver.repair(root, prior, batches, options);
    check_round(solver, root, repaired, options, ranks, algo_name(algo));
    prior = repaired;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RepairFuzz,
    ::testing::Combine(::testing::Values(61ULL, 62ULL),
                       ::testing::Values(Algo::kBellmanFord, Algo::kDel25,
                                         Algo::kPrune25, Algo::kOpt25),
                       ::testing::Values(rank_t{1}, rank_t{3}, rank_t{4})),
    [](const ::testing::TestParamInfo<Param>& tpi) {
      return "seed" + std::to_string(std::get<0>(tpi.param)) + "_" +
             algo_name(std::get<1>(tpi.param)) + "_ranks" +
             std::to_string(std::get<2>(tpi.param));
    });

// Bucket widths stress phase mixes (including pull phases under prune).
class RepairDeltaSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RepairDeltaSweep, BitIdenticalAcrossDeltas) {
  const std::uint32_t delta = GetParam();
  DynamicSolver solver(test_graph(71), {.machine = {.num_ranks = 4}});
  std::mt19937_64 rng(delta);
  for (SsspOptions options :
       {SsspOptions::prune(delta), SsspOptions::opt(delta)}) {
    options.track_parents = true;
    SsspResult prior = solver.solve(0, options);
    const AppliedBatch applied =
        solver.apply(random_batch(solver.graph(), rng, 6));
    const std::span<const AppliedBatch> batches(&applied, 1);
    const SsspResult repaired = solver.repair(0, prior, batches, options);
    check_round(solver, 0, repaired, options, 4, "delta sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, RepairDeltaSweep,
                         ::testing::Values(1u, 5u, 25u, 256u, 10000u));

// Data-path and mode toggles: the repair sweep rides the same engine as a
// fresh solve, so every toggle must stay result-inert here too.
TEST(RepairToggles, ReferencePathLanesAndForcedPullMatch) {
  std::mt19937_64 rng(81);
  std::vector<SsspOptions> variants;
  {
    SsspOptions reference = SsspOptions::opt(25);
    reference.data_path = DataPath::kReference;
    reference.sender_reduction = false;
    reference.parallel_apply = false;
    variants.push_back(reference);

    SsspOptions forced = SsspOptions::prune(25);
    forced.prune_mode = PruneMode::kForcedSequence;
    forced.forced_pull.assign(64, true);
    variants.push_back(forced);
  }
  for (SsspOptions options : variants) {
    options.track_parents = true;
    DynamicSolver solver(test_graph(83),
                         {.machine = {.num_ranks = 3, .lanes_per_rank = 2}});
    SsspResult prior = solver.solve(2, options);
    const AppliedBatch applied =
        solver.apply(random_batch(solver.graph(), rng, 8));
    const std::span<const AppliedBatch> batches(&applied, 1);
    const SsspResult repaired = solver.repair(2, prior, batches, options);
    check_round(solver, 2, repaired, options, 3, "toggles");
  }
}

// One repair may cover several applied batches, passed as the receipts in
// order — including receipts that partially undo each other.
TEST(RepairMultiBatch, SingleRepairOverSeveralReceipts) {
  DynamicSolver solver(test_graph(91), {.machine = {.num_ranks = 4}});
  SsspOptions options = SsspOptions::del(25);
  options.track_parents = true;
  std::mt19937_64 rng(92);

  SsspResult prior = solver.solve(0, options);
  std::vector<AppliedBatch> receipts;
  for (int i = 0; i < 3; ++i) {
    receipts.push_back(solver.apply(random_batch(solver.graph(), rng, 5)));
  }
  const SsspResult repaired = solver.repair(0, prior, receipts, options);
  check_round(solver, 0, repaired, options, 4, "multi batch");
}

// Disconnect and reconnect: deletions can push vertices to infinity (the
// repaired result must agree there is no path), and a later insert must
// bring them back at the right distance.
TEST(RepairTargeted, DisconnectThenReconnect) {
  EdgeList edges(5);
  edges.add_edge(0, 1, 1);
  edges.add_edge(1, 2, 1);
  edges.add_edge(2, 3, 1);
  edges.add_edge(3, 4, 1);
  edges.canonicalize();
  DynamicSolver solver(CsrGraph::from_edges(edges),
                       {.machine = {.num_ranks = 2}});
  SsspOptions options = SsspOptions::del(2);
  options.track_parents = true;

  SsspResult prior = solver.solve(0, options);
  ASSERT_EQ(prior.dist[4], 4u);

  const AppliedBatch cut = solver.apply(EdgeBatch{}.delete_edge(2, 3));
  const std::span<const AppliedBatch> cut_span(&cut, 1);
  SsspResult repaired = solver.repair(0, prior, cut_span, options);
  EXPECT_EQ(repaired.dist[3], kInfDist);
  EXPECT_EQ(repaired.dist[4], kInfDist);
  EXPECT_EQ(repaired.parent[4], kInvalidVid);
  check_round(solver, 0, repaired, options, 2, "disconnect");
  prior = std::move(repaired);

  const AppliedBatch link = solver.apply(EdgeBatch{}.insert_edge(0, 4, 2));
  const std::span<const AppliedBatch> link_span(&link, 1);
  repaired = solver.repair(0, prior, link_span, options);
  EXPECT_EQ(repaired.dist[4], 2u);
  EXPECT_EQ(repaired.dist[3], 3u);  // re-reached through the new edge
  check_round(solver, 0, repaired, options, 2, "reconnect");
}

// A batch that cannot affect the tree (non-tree edge deleted, weight
// increase off-tree) must still repair to exactly the fresh answer — the
// planner's no-seed early-out path.
TEST(RepairTargeted, NoOpBatchStillMatches) {
  EdgeList edges(4);
  edges.add_edge(0, 1, 1);
  edges.add_edge(0, 2, 1);
  edges.add_edge(1, 2, 10);  // never on a shortest path
  edges.add_edge(2, 3, 1);
  edges.canonicalize();
  DynamicSolver solver(CsrGraph::from_edges(edges),
                       {.machine = {.num_ranks = 2}});
  SsspOptions options = SsspOptions::del(4);
  options.track_parents = true;
  const SsspResult prior = solver.solve(0, options);

  const AppliedBatch applied = solver.apply(EdgeBatch{}.delete_edge(1, 2));
  const std::span<const AppliedBatch> batches(&applied, 1);
  const SsspResult repaired = solver.repair(0, prior, batches, options);
  EXPECT_FALSE(solver.last_repair_stats().swept);  // planner-only repair
  check_round(solver, 0, repaired, options, 2, "no-op batch");
}

TEST(RepairErrors, RequiresParentsAndAWellFormedPrior) {
  DynamicSolver solver(test_graph(97), {.machine = {.num_ranks = 2}});
  SsspOptions options = SsspOptions::del(25);
  options.track_parents = true;
  const SsspResult prior = solver.solve(0, options);
  const AppliedBatch applied = solver.apply(EdgeBatch{}.insert_edge(0, 3, 9));
  const std::span<const AppliedBatch> batches(&applied, 1);

  SsspOptions no_parents = options;
  no_parents.track_parents = false;
  EXPECT_THROW(solver.repair(0, prior, batches, no_parents),
               std::invalid_argument);

  SsspResult truncated = prior;
  truncated.parent.pop_back();
  EXPECT_THROW(solver.repair(0, truncated, batches, options),
               std::invalid_argument);

  // Prior rooted elsewhere: rejected by the planner's root check.
  EXPECT_THROW(solver.repair(1, prior, batches, options),
               std::invalid_argument);

  EXPECT_THROW(
      solver.solve(solver.graph().num_vertices(), options),
      std::out_of_range);
}

}  // namespace
}  // namespace parsssp
