// The batched multi-root engine must be observationally a loop of per-root
// solves: bit-identical distances to Solver::solve (and the Dijkstra
// oracle) for every option set, any rank count, any batch size, duplicate
// roots included — plus the solve_batch dedup/retention satellite.
#include <gtest/gtest.h>

#include <tuple>

#include "core/solver.hpp"
#include "graph/builders.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

enum class Algo { kDijkstra, kBellmanFord, kDel25, kPrune25, kOpt25 };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kDijkstra:
      return "Dijkstra";
    case Algo::kBellmanFord:
      return "BellmanFord";
    case Algo::kDel25:
      return "Del25";
    case Algo::kPrune25:
      return "Prune25";
    case Algo::kOpt25:
      return "Opt25";
  }
  return "?";
}

SsspOptions algo_options(Algo a) {
  switch (a) {
    case Algo::kDijkstra:
      return SsspOptions::dijkstra();
    case Algo::kBellmanFord:
      return SsspOptions::bellman_ford();
    case Algo::kDel25:
      return SsspOptions::del(25);
    case Algo::kPrune25:
      return SsspOptions::prune(25);
    case Algo::kOpt25:
      return SsspOptions::opt(25);
  }
  return {};
}

CsrGraph rmat_graph(std::uint64_t seed, int scale = 8) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

using Param = std::tuple<std::uint64_t /*seed*/, Algo, rank_t>;

class MultiEngineProperty : public ::testing::TestWithParam<Param> {};

TEST_P(MultiEngineProperty, MatchesPerRootSolveAndOracle) {
  const auto [seed, algo, ranks] = GetParam();
  const auto g = rmat_graph(seed);
  const SsspOptions options = algo_options(algo);
  Solver solver(g, {.machine = {.num_ranks = ranks}});

  const std::vector<vid_t> roots = {0, 3, 17, 42, 101};
  const MultiRootResult multi = solver.solve_multi(roots, options);
  ASSERT_EQ(multi.dist.size(), roots.size());
  EXPECT_EQ(multi.stats.num_roots, roots.size());

  for (std::size_t i = 0; i < roots.size(); ++i) {
    const auto single = solver.solve(roots[i], options);
    EXPECT_EQ(multi.dist[i], single.dist)
        << algo_name(algo) << " seed=" << seed << " ranks=" << ranks
        << " root=" << roots[i];
    EXPECT_EQ(multi.dist[i], dijkstra_distances(g, roots[i]))
        << "oracle mismatch at root " << roots[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiEngineProperty,
    ::testing::Combine(
        ::testing::Values(1ULL, 2ULL),
        ::testing::Values(Algo::kDijkstra, Algo::kBellmanFord, Algo::kDel25,
                          Algo::kPrune25, Algo::kOpt25),
        ::testing::Values(rank_t{1}, rank_t{2}, rank_t{5})),
    [](const ::testing::TestParamInfo<Param>& tpi) {
      return "seed" + std::to_string(std::get<0>(tpi.param)) + "_" +
             algo_name(std::get<1>(tpi.param)) + "_ranks" +
             std::to_string(std::get<2>(tpi.param));
    });

TEST(MultiEngine, StructuredGraphs) {
  // Degenerate shapes stress bucket advance: a path (many buckets, tiny
  // frontiers), a star (one bucket, huge frontier), and a disconnected
  // pair (unreachable vertices must stay at infinity in every slab).
  const auto path = CsrGraph::from_edges(make_path(64, /*weight=*/3));
  const auto star = CsrGraph::from_edges(make_star(64, /*weight=*/7));
  for (const CsrGraph* g : {&path, &star}) {
    Solver solver(*g, {.machine = {.num_ranks = 3}});
    const std::vector<vid_t> roots = {0, 1, 63};
    const auto multi = solver.solve_multi(roots, SsspOptions::opt(5));
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_EQ(multi.dist[i], dijkstra_distances(*g, roots[i]))
          << "root " << roots[i];
    }
  }
}

TEST(MultiEngine, DuplicateRootsShareOneSlab) {
  const auto g = rmat_graph(7);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const std::vector<vid_t> roots = {9, 9, 4, 9, 4};
  const auto multi = solver.solve_multi(roots, SsspOptions::del(25));
  ASSERT_EQ(multi.dist.size(), 5u);
  EXPECT_EQ(multi.stats.num_roots, 2u);  // unique roots only
  EXPECT_EQ(multi.dist[0], multi.dist[1]);
  EXPECT_EQ(multi.dist[0], multi.dist[3]);
  EXPECT_EQ(multi.dist[2], multi.dist[4]);
  EXPECT_EQ(multi.dist[0], dijkstra_distances(g, 9));
  EXPECT_EQ(multi.dist[2], dijkstra_distances(g, 4));
}

TEST(MultiEngine, BatchesLargerThanSweepLimitChunk) {
  const auto g = rmat_graph(3, /*scale=*/7);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  std::vector<vid_t> roots;
  for (vid_t r = 0; r < 70; ++r) roots.push_back(r);  // > kMaxMultiRoots
  const auto multi = solver.solve_multi(roots, SsspOptions::opt(25));
  ASSERT_EQ(multi.dist.size(), roots.size());
  EXPECT_EQ(multi.stats.num_roots, roots.size());
  ASSERT_EQ(multi.stats.per_root_relaxations.size(), roots.size());
  for (const vid_t r : {vid_t{0}, vid_t{63}, vid_t{64}, vid_t{69}}) {
    EXPECT_EQ(multi.dist[r], dijkstra_distances(g, r)) << "root " << r;
  }
}

TEST(MultiEngine, StatsAreSaneAndPerRootCountsAddUp) {
  const auto g = rmat_graph(5);
  Solver solver(g, {.machine = {.num_ranks = 3}});
  const std::vector<vid_t> roots = {1, 2, 3, 4};
  const auto multi = solver.solve_multi(roots, SsspOptions::del(25));
  EXPECT_GT(multi.stats.epochs, 0u);
  EXPECT_GT(multi.stats.phases, 0u);
  EXPECT_GT(multi.stats.model_time_s, 0.0);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const auto r = multi.stats.per_root_relaxations[i];
    // An isolated root legitimately relaxes nothing.
    if (g.degree(roots[i]) > 0) EXPECT_GT(r, 0u) << "root " << roots[i];
    sum += r;
  }
  EXPECT_EQ(sum, multi.stats.relaxations);
  EXPECT_GT(multi.stats.aggregate_gteps(g.num_undirected_edges()), 0.0);
}

TEST(MultiEngine, InvalidArgumentsThrow) {
  const auto g = rmat_graph(1, /*scale=*/6);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const std::vector<vid_t> bad_root = {g.num_vertices()};
  // Out-of-range roots are a range error (malformed options stay
  // invalid_argument below).
  EXPECT_THROW(solver.solve_multi(bad_root, SsspOptions::del(25)),
               std::out_of_range);
  SsspOptions zero_delta = SsspOptions::del(25);
  zero_delta.delta = 0;
  const std::vector<vid_t> ok = {0};
  EXPECT_THROW(solver.solve_multi(ok, zero_delta), std::invalid_argument);
  EXPECT_TRUE(
      solver.solve_multi(std::span<const vid_t>{}, SsspOptions::del(25))
          .dist.empty());
}

// --- solve_batch satellite: dedup + opt-in distance retention ------------

TEST(SolveBatch, DedupesRepeatedRootsAndKeepsAggregates) {
  const auto g = rmat_graph(13);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const SsspOptions options = SsspOptions::opt(25);
  const std::vector<vid_t> with_dups = {8, 8, 15, 8, 15, 23};

  const BatchSummary summary = solver.solve_batch(with_dups, options);
  EXPECT_EQ(summary.num_roots, 6u);
  EXPECT_EQ(summary.unique_roots, 3u);
  ASSERT_EQ(summary.per_root.size(), 6u);
  EXPECT_TRUE(summary.distances.empty());  // retention is opt-in
  // Repeats reuse the first occurrence's stats verbatim.
  EXPECT_EQ(summary.per_root[1].total_relaxations(),
            summary.per_root[0].total_relaxations());
  EXPECT_EQ(summary.per_root[4].total_relaxations(),
            summary.per_root[2].total_relaxations());
  // Aggregates still average over all six entries.
  EXPECT_GT(summary.harmonic_mean_gteps, 0.0);
}

TEST(SolveBatch, KeepDistancesRetainsPerRootVectors) {
  const auto g = rmat_graph(13);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const SsspOptions options = SsspOptions::del(25);
  const std::vector<vid_t> roots = {8, 15, 8};

  const BatchSummary summary =
      solver.solve_batch(roots, options, {.keep_distances = true});
  ASSERT_EQ(summary.distances.size(), 3u);
  EXPECT_EQ(summary.distances[0], dijkstra_distances(g, 8));
  EXPECT_EQ(summary.distances[1], dijkstra_distances(g, 15));
  EXPECT_EQ(summary.distances[2], summary.distances[0]);
}

}  // namespace
}  // namespace parsssp
