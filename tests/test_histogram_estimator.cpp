// The histogram-based pull-request estimator (paper §III-C's "histograms
// could be used for deriving approximate estimates").
#include <gtest/gtest.h>

#include "core/dist_graph.hpp"
#include "core/push_pull.hpp"
#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

// 200 long arcs on vertex 0, weights spread over [10, 100].
struct Fixture {
  Fixture() {
    EdgeList list;
    for (vid_t i = 1; i <= 200; ++i) {
      list.add_edge(0, i, static_cast<weight_t>(10 + (i * 37) % 91));
    }
    g = CsrGraph::from_edges(list);
    part = BlockPartition(g.num_vertices(), 1);
    view = LocalEdgeView::build(g, part, 0, 10);
  }
  CsrGraph g;
  BlockPartition part;
  LocalEdgeView view;
};

TEST(HistogramEstimator, ZeroBelowDelta) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.view.count_long_below_histogram(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(f.view.count_long_below_histogram(0, 5), 0.0);
}

TEST(HistogramEstimator, FullAboveMax) {
  Fixture f;
  EXPECT_NEAR(f.view.count_long_below_histogram(0, 10000), 200.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.view.count_long_below_histogram(0, kInfDist), 200.0);
}

TEST(HistogramEstimator, TracksExactWithinBinResolution) {
  Fixture f;
  for (const dist_t bound : {20u, 35u, 50u, 64u, 80u, 99u}) {
    const double exact =
        static_cast<double>(f.view.count_long_below(0, bound));
    const double approx = f.view.count_long_below_histogram(0, bound);
    // One bin spans ~5.7 weight units here; allow 2 bins of slack.
    EXPECT_NEAR(approx, exact, 2.0 * 200.0 / LocalEdgeView::kHistogramBins)
        << "bound=" << bound;
  }
}

TEST(HistogramEstimator, MonotoneInBound) {
  Fixture f;
  double prev = -1.0;
  for (dist_t bound = 10; bound <= 110; bound += 5) {
    const double c = f.view.count_long_below_histogram(0, bound);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(HistogramEstimator, UsedByPushPullEstimate) {
  Fixture f;
  std::vector<dist_t> dist(f.g.num_vertices(), kInfDist);
  dist[0] = 60;
  std::vector<char> settled(f.g.num_vertices(), 1);
  settled[0] = 0;
  const std::vector<vid_t> members;
  const auto exact = estimate_push_pull_local(
      f.view, dist, settled, members, 0, 10, EstimatorKind::kExact, 100,
      false);
  const auto hist = estimate_push_pull_local(
      f.view, dist, settled, members, 0, 10, EstimatorKind::kHistogram, 100,
      false);
  EXPECT_GT(hist.pull_requests, 0u);
  const double ratio = static_cast<double>(hist.pull_requests) /
                       static_cast<double>(exact.pull_requests);
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.25);
}

TEST(HistogramEstimator, EngineCorrectUnderHistogramDecisions) {
  RmatConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 8;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  Solver solver(g, {.machine = {.num_ranks = 4}});
  SsspOptions o = SsspOptions::prune(25);
  o.estimator = EstimatorKind::kHistogram;
  const vid_t root = sample_roots(g, 1, 1).at(0);
  EXPECT_EQ(solver.solve(root, o).dist, dijkstra_distances(g, root));
}

}  // namespace
}  // namespace parsssp
