#include "graph/snap_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace parsssp {
namespace {

TEST(SnapIo, ReadsPlainEdgeList) {
  std::istringstream in("# comment\n0 1\n1 2\n");
  const EdgeList list = read_snap_text(in);
  ASSERT_EQ(list.num_edges(), 2u);
  EXPECT_EQ(list.edges()[0], (WeightedEdge{0, 1, 1}));
  EXPECT_EQ(list.edges()[1], (WeightedEdge{1, 2, 1}));
}

TEST(SnapIo, ReadsWeightColumn) {
  std::istringstream in("0 1 9\n");
  const EdgeList list = read_snap_text(in);
  EXPECT_EQ(list.edges()[0].w, 9u);
}

TEST(SnapIo, DefaultWeightConfigurable) {
  std::istringstream in("0 1\n");
  const EdgeList list = read_snap_text(in, 42);
  EXPECT_EQ(list.edges()[0].w, 42u);
}

TEST(SnapIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a\n\n# b\n3 4\n");
  EXPECT_EQ(read_snap_text(in).num_edges(), 1u);
}

TEST(SnapIo, ThrowsOnMalformedLine) {
  std::istringstream in("0 x\n");
  EXPECT_THROW(read_snap_text(in), std::runtime_error);
}

TEST(SnapIo, TextRoundTrip) {
  EdgeList list;
  list.add_edge(0, 5, 3);
  list.add_edge(5, 9, 200);
  std::ostringstream out;
  write_snap_text(out, list);
  std::istringstream in(out.str());
  const EdgeList back = read_snap_text(in);
  EXPECT_EQ(back.edges(), list.edges());
}

TEST(SnapIo, BinaryRoundTrip) {
  EdgeList list(100);
  list.add_edge(0, 5, 3);
  list.add_edge(5, 99, 255);
  std::ostringstream out(std::ios::binary);
  write_binary(out, list);
  std::istringstream in(out.str(), std::ios::binary);
  const EdgeList back = read_binary(in);
  EXPECT_EQ(back.edges(), list.edges());
  EXPECT_EQ(back.num_vertices(), list.num_vertices());
}

TEST(SnapIo, BinaryRejectsBadMagic) {
  std::istringstream in("not a binary file at all.....", std::ios::binary);
  EXPECT_THROW(read_binary(in), std::runtime_error);
}

TEST(SnapIo, BinaryRejectsTruncation) {
  EdgeList list;
  list.add_edge(0, 1, 1);
  std::ostringstream out(std::ios::binary);
  write_binary(out, list);
  std::string bytes = out.str();
  bytes.resize(bytes.size() / 2);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(read_binary(in), std::runtime_error);
}

TEST(SnapIo, CompactVertexIds) {
  EdgeList list;
  list.add_edge(1000, 5, 1);
  list.add_edge(5, 70000, 2);
  const EdgeList compact = compact_vertex_ids(list);
  EXPECT_EQ(compact.num_vertices(), 3u);
  // First-appearance order: 1000 -> 0, 5 -> 1, 70000 -> 2.
  EXPECT_EQ(compact.edges()[0], (WeightedEdge{0, 1, 1}));
  EXPECT_EQ(compact.edges()[1], (WeightedEdge{1, 2, 2}));
}

TEST(SnapIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_snap_file("/nonexistent/path.txt"), std::runtime_error);
}

}  // namespace
}  // namespace parsssp
