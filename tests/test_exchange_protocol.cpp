// Negative tests for the checked exchange/lane/ownership protocols
// (runtime/protocol_check.hpp). Boards and machines are constructed with
// checking explicitly enabled so these pass in every build configuration,
// including the Debug build where MPS_CHECKED_EXCHANGE makes checking the
// default.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/protocol_check.hpp"
#include "runtime/thread_pool.hpp"

namespace parsssp {
namespace {

std::vector<std::byte> payload(int value) {
  const std::vector<int> items{value};
  return ExchangeBoard::pack(std::span<const int>(items));
}

TEST(ExchangeProtocol, DoublePostCaught) {
  ExchangeBoard board(2, /*checked=*/true);
  board.post(0, 1, payload(1));
  EXPECT_THROW(board.post(0, 1, payload(2)), ProtocolError);
}

TEST(ExchangeProtocol, TakeBeforePostCaught) {
  ExchangeBoard board(2, /*checked=*/true);
  EXPECT_THROW(board.take(0, 1), ProtocolError);
}

TEST(ExchangeProtocol, DoubleTakeCaught) {
  ExchangeBoard board(2, /*checked=*/true);
  board.post(0, 1, payload(7));
  board.take(0, 1);
  EXPECT_THROW(board.take(0, 1), ProtocolError);
}

TEST(ExchangeProtocol, StaleEpochTakeCaught) {
  ExchangeBoard board(2, /*checked=*/true);
  board.post(0, 1, payload(7), /*round=*/1);
  // The receiver believes it is in round 2 but the payload is round 1's:
  // some rank skipped an exchange. Caught as a stale-epoch take.
  EXPECT_THROW(board.take(0, 1, /*round=*/2), ProtocolError);
}

TEST(ExchangeProtocol, CrossRoundPostCaught) {
  ExchangeBoard board(2, /*checked=*/true);
  // Posting round 5 into a slot whose epoch is 0: the poster ran exchange
  // rounds its peers never saw.
  EXPECT_THROW(board.post(0, 1, payload(1), /*round=*/5), ProtocolError);
}

TEST(ExchangeProtocol, OutOfRangeRanksCaught) {
  ExchangeBoard board(2, /*checked=*/true);
  EXPECT_THROW(board.post(2, 0, payload(1)), ProtocolError);
  EXPECT_THROW(board.post(0, 9, payload(1)), ProtocolError);
  EXPECT_THROW(board.take(7, 0), ProtocolError);
}

TEST(ExchangeProtocol, UncheckedBoardDoesNotEnforce) {
  ExchangeBoard board(2, /*checked=*/false);
  board.post(0, 1, payload(1));
  EXPECT_NO_THROW(board.post(0, 1, payload(2)));  // last write wins
  board.take(0, 1);
  EXPECT_TRUE(board.take(0, 1).empty());  // double take just sees empty
}

TEST(ExchangeProtocol, CorrectRoundsPassChecks) {
  ExchangeBoard board(2, /*checked=*/true);
  for (std::uint64_t round = 1; round <= 10; ++round) {
    board.post(0, 1, payload(static_cast<int>(round)), round);
    board.post(1, 0, payload(-static_cast<int>(round)), round);
    EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(0, 1, round)).at(0),
              static_cast<int>(round));
    EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(1, 0, round)).at(0),
              -static_cast<int>(round));
  }
}

TEST(ExchangeProtocol, CheckedMachineRunsCorrectJobsCleanly) {
  constexpr rank_t R = 4;
  Machine m({.num_ranks = R,
             .lanes_per_rank = 2,
             .record_pair_traffic = true,
             .checked_exchange = true});
  m.run([&](RankCtx& ctx) {
    for (int round = 0; round < 8; ++round) {
      std::vector<std::vector<int>> out(R);
      for (rank_t d = 0; d < R; ++d) out[d] = {round};
      const auto in = ctx.exchange(std::move(out), PhaseKind::kShortPhase);
      for (rank_t s = 0; s < R; ++s) {
        ASSERT_EQ(in[s].size(), 1u);
        EXPECT_EQ(in[s][0], round);
      }
      const auto sum = ctx.allreduce<std::uint64_t>(1, SumOp{});
      EXPECT_EQ(sum, R);
    }
  });
}

TEST(ExchangeProtocol, CheckedPoolRunsCorrectJobsCleanly) {
  ThreadPool pool(4, /*checked=*/true);
  std::vector<std::atomic<int>> hits(100);
  for (int repeat = 0; repeat < 16; ++repeat) {
    pool.parallel_for(100, [&](unsigned, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i]++;
    });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 16);
}

// The abort-with-diagnostic path: a worker lane touching rank-owned state
// (here: the rank's traffic counters) is caught by RankCtx::check_owner,
// and the resulting ProtocolError escaping a lane thread terminates the
// process with the diagnostic on stderr.
TEST(ExchangeProtocolDeathTest, WorkerLaneTouchingRankStateAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Machine m({.num_ranks = 1,
                   .lanes_per_rank = 4,
                   .checked_exchange = true});
        m.run([](RankCtx& ctx) {
          ThreadPool& pool = ctx.pool();
          pool.run_on_lanes([&](unsigned lane) {
            if (lane == 1) ctx.traffic().add(PhaseKind::kControl, 1, 1);
          });
        });
      },
      "protocol violation");
}

}  // namespace
}  // namespace parsssp
