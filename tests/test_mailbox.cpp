#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

TEST(ExchangeBoard, PackUnpackRoundTrip) {
  const std::vector<std::uint64_t> values{1, 2, 3, 0xffffffffffffULL};
  const auto bytes =
      ExchangeBoard::pack(std::span<const std::uint64_t>(values));
  EXPECT_EQ(bytes.size(), values.size() * sizeof(std::uint64_t));
  EXPECT_EQ(ExchangeBoard::unpack<std::uint64_t>(bytes), values);
}

TEST(ExchangeBoard, PackEmpty) {
  const std::vector<int> empty;
  const auto bytes = ExchangeBoard::pack(std::span<const int>(empty));
  EXPECT_TRUE(bytes.empty());
  EXPECT_TRUE(ExchangeBoard::unpack<int>(bytes).empty());
}

TEST(ExchangeBoard, PostTakeMovesData) {
  // Unchecked board: the trailing double-take (asserting the slot was
  // drained) is a protocol violation under MPS_CHECKED_EXCHANGE.
  ExchangeBoard board(3, /*checked=*/false);
  const std::vector<int> payload{7, 8, 9};
  board.post(0, 2, ExchangeBoard::pack(std::span<const int>(payload)));
  EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(0, 2)), payload);
  // Slot is drained after take.
  EXPECT_TRUE(board.take(0, 2).empty());
}

TEST(ExchangeBoard, SlotsAreIndependent) {
  ExchangeBoard board(2);
  const std::vector<int> a{1};
  const std::vector<int> b{2};
  board.post(0, 1, ExchangeBoard::pack(std::span<const int>(a)));
  board.post(1, 0, ExchangeBoard::pack(std::span<const int>(b)));
  EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(0, 1)), a);
  EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(1, 0)), b);
}

TEST(ExchangeBoard, StructMessages) {
  struct Msg {
    std::uint64_t v;
    std::uint64_t d;
    bool operator==(const Msg&) const = default;
  };
  ExchangeBoard board(2);
  const std::vector<Msg> msgs{{1, 10}, {2, 20}};
  board.post(1, 0, ExchangeBoard::pack(std::span<const Msg>(msgs)));
  EXPECT_EQ(ExchangeBoard::unpack<Msg>(board.take(1, 0)), msgs);
}

// unpack constructs elements directly from the wire bytes; it must not
// value-initialize first and assign after (the seed's resize-then-memcpy
// did, redundantly zeroing every element). The observable contract: exact
// reconstruction for any length, including a non-multiple tail guard.
TEST(ExchangeBoard, UnpackReconstructsWithoutZeroFill) {
  struct Probe {
    std::uint32_t a;
    std::uint32_t b;
    bool operator==(const Probe&) const = default;
  };
  std::vector<Probe> values;
  for (std::uint32_t i = 0; i < 100; ++i) values.push_back({i, ~i});
  const auto bytes = ExchangeBoard::pack(std::span<const Probe>(values));
  EXPECT_EQ(ExchangeBoard::unpack<Probe>(bytes), values);
  // One-element payload exercises the n != 0 path boundary.
  const std::vector<Probe> one{{42, 7}};
  EXPECT_EQ(ExchangeBoard::unpack<Probe>(
                ExchangeBoard::pack(std::span<const Probe>(one))),
            one);
}

// The typed segment path coexists with the legacy byte path on one board:
// a byte post travels as a single std::byte segment and stays readable
// through take(), while typed segments move through post/take_segments.
TEST(ExchangeBoard, ByteAndSegmentPathsCoexist) {
  ExchangeBoard board(2, /*checked=*/false);
  const std::vector<int> payload{1, 2, 3};
  board.post(0, 1, ExchangeBoard::pack(std::span<const int>(payload)));
  EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(0, 1)), payload);

  std::vector<ErasedBuffer> segments;
  segments.push_back(ErasedBuffer(std::vector<int>{4, 5}));
  segments.push_back(ErasedBuffer(std::vector<int>{6}));
  board.post_segments(1, 0, std::move(segments));
  auto got = board.take_segments(1, 0);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].take_as<int>(), (std::vector<int>{4, 5}));
  EXPECT_EQ(got[1].take_as<int>(), (std::vector<int>{6}));
}

TEST(ErasedBuffer, ReportsTypeAndSize) {
  ErasedBuffer buf(std::vector<std::uint16_t>{1, 2, 3});
  EXPECT_TRUE(buf.holds_value());
  EXPECT_EQ(buf.size(), 3u);
  ASSERT_NE(buf.type(), nullptr);
  EXPECT_TRUE(*buf.type() == typeid(std::uint16_t));
  const auto back = buf.take_as<std::uint16_t>();
  EXPECT_EQ(back, (std::vector<std::uint16_t>{1, 2, 3}));
}

}  // namespace
}  // namespace parsssp
