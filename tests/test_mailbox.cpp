#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

TEST(ExchangeBoard, PackUnpackRoundTrip) {
  const std::vector<std::uint64_t> values{1, 2, 3, 0xffffffffffffULL};
  const auto bytes =
      ExchangeBoard::pack(std::span<const std::uint64_t>(values));
  EXPECT_EQ(bytes.size(), values.size() * sizeof(std::uint64_t));
  EXPECT_EQ(ExchangeBoard::unpack<std::uint64_t>(bytes), values);
}

TEST(ExchangeBoard, PackEmpty) {
  const std::vector<int> empty;
  const auto bytes = ExchangeBoard::pack(std::span<const int>(empty));
  EXPECT_TRUE(bytes.empty());
  EXPECT_TRUE(ExchangeBoard::unpack<int>(bytes).empty());
}

TEST(ExchangeBoard, PostTakeMovesData) {
  // Unchecked board: the trailing double-take (asserting the slot was
  // drained) is a protocol violation under MPS_CHECKED_EXCHANGE.
  ExchangeBoard board(3, /*checked=*/false);
  const std::vector<int> payload{7, 8, 9};
  board.post(0, 2, ExchangeBoard::pack(std::span<const int>(payload)));
  EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(0, 2)), payload);
  // Slot is drained after take.
  EXPECT_TRUE(board.take(0, 2).empty());
}

TEST(ExchangeBoard, SlotsAreIndependent) {
  ExchangeBoard board(2);
  const std::vector<int> a{1};
  const std::vector<int> b{2};
  board.post(0, 1, ExchangeBoard::pack(std::span<const int>(a)));
  board.post(1, 0, ExchangeBoard::pack(std::span<const int>(b)));
  EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(0, 1)), a);
  EXPECT_EQ(ExchangeBoard::unpack<int>(board.take(1, 0)), b);
}

TEST(ExchangeBoard, StructMessages) {
  struct Msg {
    std::uint64_t v;
    std::uint64_t d;
    bool operator==(const Msg&) const = default;
  };
  ExchangeBoard board(2);
  const std::vector<Msg> msgs{{1, 10}, {2, 20}};
  board.post(1, 0, ExchangeBoard::pack(std::span<const Msg>(msgs)));
  EXPECT_EQ(ExchangeBoard::unpack<Msg>(board.take(1, 0)), msgs);
}

}  // namespace
}  // namespace parsssp
