// Hardening regressions for LazyBucketQueue (core/lazy_pq.hpp): the
// dense-array cap with sparse overflow spill (bounded memory when a
// near-kInf speculative distance meets Delta=1), and the amortized
// cursor peek (min_bucket() used to be const, so it rescanned every
// drained bucket below the true minimum on each call).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/lazy_pq.hpp"
#include "core/types.hpp"

namespace parsssp {
namespace {

using Entry = LazyBucketQueue::Entry;

TEST(LazyBucketQueueOverflow, HugeDistanceAtDeltaOneStaysBounded) {
  // Delta=1 with a weight near kInfDist used to resize the dense array to
  // d/1 buckets — billions of empty vectors from one push.
  LazyBucketQueue q(1);
  const dist_t huge = kInfDist - 2;
  q.push(7, huge);
  q.push(8, huge - 1);
  q.push(9, 3);
  EXPECT_LE(q.dense_buckets(), LazyBucketQueue::kMaxDenseBuckets);
  EXPECT_EQ(q.overflow_entries(), 2u);
  EXPECT_EQ(q.size(), 3u);

  std::vector<Entry> out;
  EXPECT_EQ(q.pop_batch(out), 3u);  // dense entries drain first
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 9u);
  EXPECT_EQ(q.pop_batch(out), bucket_of(huge - 1, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 8u);
  EXPECT_EQ(q.pop_batch(out), bucket_of(huge, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 7u);
  EXPECT_TRUE(q.empty());
}

TEST(LazyBucketQueueOverflow, OverflowBatchKeepsPushOrder) {
  LazyBucketQueue q(1);
  const dist_t far = dist_t{LazyBucketQueue::kMaxDenseBuckets} + 40;
  q.push(1, far);
  q.push(2, far);
  q.push(3, far + 1);  // a different overflow bucket
  std::vector<Entry> out;
  EXPECT_EQ(q.pop_batch(out), bucket_of(far, 1));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 1u);
  EXPECT_EQ(out[1].first, 2u);
  EXPECT_EQ(q.min_bucket(), bucket_of(far + 1, 1));
  EXPECT_EQ(q.pop_batch(out), bucket_of(far + 1, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 3u);
  EXPECT_EQ(q.pop_batch(out), kInfBucket);
}

TEST(LazyBucketQueueOverflow, DensePushAfterOverflowStillWinsThePop) {
  LazyBucketQueue q(1);
  const dist_t far = dist_t{LazyBucketQueue::kMaxDenseBuckets} * 2;
  q.push(1, far);
  EXPECT_EQ(q.min_bucket(), bucket_of(far, 1));
  q.push(2, 11);  // dense entries sort below every overflow bucket
  EXPECT_EQ(q.min_bucket(), 11u);
  std::vector<Entry> out;
  EXPECT_EQ(q.pop_batch(out), 11u);
  EXPECT_EQ(q.pop_batch(out), bucket_of(far, 1));
  EXPECT_TRUE(q.empty());
}

TEST(LazyBucketQueueCursor, RepeatedPeeksDoNotRescanDrainedBuckets) {
  LazyBucketQueue q(1);
  const dist_t kGap = 1000;
  q.push(1, 0);
  q.push(2, kGap);
  std::vector<Entry> out;
  ASSERT_EQ(q.pop_batch(out), 0u);
  // The first peek pays the gap scan once; the cursor memoizes it, so
  // every later peek is O(1). The old const min_bucket() rescanned the
  // full gap on all 100 calls below.
  ASSERT_EQ(q.min_bucket(), kGap);
  const std::uint64_t after_first = q.scan_steps();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(q.min_bucket(), kGap);
  EXPECT_EQ(q.scan_steps(), after_first);
}

TEST(LazyBucketQueueCursor, PushBelowCursorInvalidatesTheMemoizedPeek) {
  LazyBucketQueue q(1);
  q.push(1, 500);
  ASSERT_EQ(q.min_bucket(), 500u);
  q.push(2, 5);  // rewinds the cursor — the invalidation path
  EXPECT_EQ(q.min_bucket(), 5u);
}

TEST(LazyBucketQueueCursor, InterleavedPeekPopScansEachBucketOnce) {
  LazyBucketQueue q(1);
  const std::uint64_t kN = 512;
  for (std::uint64_t i = 0; i < kN; ++i) {
    q.push(static_cast<vid_t>(i), static_cast<dist_t>(i * 3));
  }
  std::vector<Entry> out;
  while (!q.empty()) {
    q.min_bucket();
    q.min_bucket();  // the repeated peek must cost nothing extra
    q.pop_batch(out);
  }
  // The cursor walks the dense range exactly once across the whole
  // drain: total emptiness probes are bounded by the highest bucket
  // index (3*kN), not peek-count x bucket-range (~quadratic before).
  EXPECT_LE(q.scan_steps(), 3 * kN + 1);
}

}  // namespace
}  // namespace parsssp
