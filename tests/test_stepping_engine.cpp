// The stepping-family engines (core/stepping_engine.hpp,
// docs/STEPPING.md). Contract under test: distances AND canonical parents
// bit-identical to the bucket-synchronous OPT engine across {rho, Delta*,
// radius} x step-parameter sweep x rank counts x data paths, repair-path
// interchangeability (a repaired result equals a fresh stepping solve),
// option validation, the solve_multi rejection, and the serve-layer
// routing of explicit stepping queries.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/builders.hpp"
#include "graph/rmat.hpp"
#include "serve/query_engine.hpp"
#include "update/dynamic_solver.hpp"
#include "update/edge_batch.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph() {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = 3;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

/// The step-parameter sweep: two points per family plus one off-default
/// queue granularity each for rho and radius.
std::vector<SsspOptions> stepping_sweep() {
  return {SsspOptions::rho_stepping(64),
          SsspOptions::rho_stepping(2048),
          SsspOptions::rho_stepping(2048, /*delta=*/4),
          SsspOptions::delta_star(4),
          SsspOptions::delta_star(25),
          SsspOptions::radius_stepping(1),
          SsspOptions::radius_stepping(4),
          SsspOptions::radius_stepping(4, /*delta=*/4)};
}

std::string config_name(const SsspOptions& o) {
  switch (o.algo) {
    case SsspAlgo::kRho:
      return "rho" + std::to_string(o.rho) + "-d" + std::to_string(o.delta);
    case SsspAlgo::kDeltaStar:
      return "dstar-d" + std::to_string(o.delta);
    case SsspAlgo::kRadius:
      return "radius-k" + std::to_string(o.radius_k) + "-d" +
             std::to_string(o.delta);
    default:
      return "other";
  }
}

// --- Bit-identity with the bucket-synchronous OPT engine ------------------

using Param = std::tuple<rank_t, DataPath>;

class SteppingEngineProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SteppingEngineProperty, DistancesAndParentsBitIdenticalToOpt) {
  const auto [ranks, path] = GetParam();
  const std::vector<CsrGraph> graphs = {rmat_graph(),
                                        CsrGraph::from_edges(make_grid(12))};
  for (const CsrGraph& g : graphs) {
    Solver solver(g, {.machine = {.num_ranks = ranks}});
    for (const vid_t root : {vid_t{0}, vid_t{g.num_vertices() / 2}}) {
      SsspOptions sync = SsspOptions::opt(25);
      sync.data_path = path;
      sync.track_parents = true;
      sync.canonical_parents = true;
      const SsspResult want = solver.solve(root, sync);
      EXPECT_TRUE(validate_against_dijkstra(g, root, want.dist).ok);

      for (SsspOptions options : stepping_sweep()) {
        options.data_path = path;
        options.track_parents = true;
        const SsspResult got = solver.solve(root, options);
        ASSERT_EQ(got.dist, want.dist)
            << config_name(options) << " ranks=" << ranks
            << " path=" << static_cast<int>(path) << " root=" << root;
        // Stepping parents are always canonical, so bit-identical
        // distances force bit-identical trees.
        ASSERT_EQ(got.parent, want.parent) << config_name(options);
        EXPECT_GT(got.stats.stepping_relaxations, 0u);
        EXPECT_EQ(got.stats.stepping_relaxations,
                  got.stats.total_relaxations());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SteppingEngineProperty,
    ::testing::Combine(::testing::Values(rank_t{1}, rank_t{3}, rank_t{4},
                                         rank_t{8}),
                       ::testing::Values(DataPath::kPooled,
                                         DataPath::kReference)),
    [](const ::testing::TestParamInfo<Param>& tpi) {
      return "ranks" + std::to_string(std::get<0>(tpi.param)) +
             (std::get<1>(tpi.param) == DataPath::kPooled ? "_pooled"
                                                          : "_reference");
    });

// --- Structure and accounting ---------------------------------------------

TEST(SteppingEngine, RadiusTakesFewerStepsThanDeltaStarOnAGrid) {
  // On a long-diameter low-skew graph with heterogeneous weights the
  // radius rule's whole point is leaping past occupied buckets: strictly
  // fewer outer steps than the one-bucket-per-step Delta* rule at the
  // same granularity. (Unit weights would degenerate r(v) to 1 and the
  // leap to a single level — heterogeneity is what radius exploits.)
  const CsrGraph g = CsrGraph::from_edges(
      make_grid(16, [](vid_t a, vid_t b) {
        return static_cast<weight_t>(20 + (a * 31 + b * 17) % 50);
      }));
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const SsspResult dstar = solver.solve(0, SsspOptions::delta_star(4));
  const SsspResult radius =
      solver.solve(0, SsspOptions::radius_stepping(4, 4));
  EXPECT_EQ(radius.dist, dstar.dist);
  EXPECT_LT(radius.stats.buckets, dstar.stats.buckets)
      << "radius=" << radius.stats.buckets
      << " dstar=" << dstar.stats.buckets;
}

TEST(SteppingEngine, RhoCoversMoreBucketsPerStepThanDeltaStar) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const SsspResult dstar = solver.solve(0, SsspOptions::delta_star(4));
  const SsspResult rho = solver.solve(0, SsspOptions::rho_stepping(4096, 4));
  EXPECT_EQ(rho.dist, dstar.dist);
  EXPECT_LE(rho.stats.buckets, dstar.stats.buckets);
  EXPECT_GT(rho.stats.phases, 0u);
  EXPECT_GE(rho.stats.phases, rho.stats.buckets);  // >= one round per step
}

TEST(SteppingEngine, StatsArePopulatedAndRankIdentical) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 3}});
  const SsspResult r = solver.solve(7, SsspOptions::rho_stepping(512));
  EXPECT_GT(r.stats.stepping_relaxations, 0u);
  EXPECT_GT(r.stats.buckets, 0u);
  EXPECT_GT(r.stats.phases, 0u);
  EXPECT_GT(r.stats.sync_allreduces, 0u);
  EXPECT_GT(r.stats.model_time_s, 0.0);
  EXPECT_GT(r.stats.model_bucket_time_s, 0.0);
  // Determinism of the collective frame: a repeat run agrees exactly.
  const SsspResult r2 = solver.solve(7, SsspOptions::rho_stepping(512));
  EXPECT_EQ(r.dist, r2.dist);
  EXPECT_EQ(r.stats.buckets, r2.stats.buckets);
  EXPECT_EQ(r.stats.phases, r2.stats.phases);
  EXPECT_EQ(r.stats.model_time_s, r2.stats.model_time_s);
}

// --- Validation and rejection ---------------------------------------------

TEST(SteppingEngine, RejectsZeroStepParameters) {
  const CsrGraph g = CsrGraph::from_edges(make_path(8));
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions rho = SsspOptions::rho_stepping(1);
  rho.rho = 0;
  EXPECT_THROW(solver.solve(0, rho), std::invalid_argument);
  SsspOptions rad = SsspOptions::radius_stepping(1);
  rad.radius_k = 0;
  EXPECT_THROW(solver.solve(0, rad), std::invalid_argument);
}

TEST(SteppingEngine, SolveMultiRejectsSteppingAlgos) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const std::vector<vid_t> roots = {0, 1};
  for (const SsspOptions& o :
       {SsspOptions::rho_stepping(256), SsspOptions::delta_star(25),
        SsspOptions::radius_stepping(2)}) {
    EXPECT_THROW(solver.solve_multi(roots, o), std::invalid_argument);
  }
}

// --- Repair-path interchangeability ---------------------------------------

TEST(SteppingEngine, RepairedResultMatchesFreshSteppingSolve) {
  // The repair engine runs its own seeded sweep, but its contract is
  // engine-independent: exact distances + canonical parents. So a repaired
  // result must equal a fresh stepping solve of the mutated graph, bit for
  // bit — the interchangeability that lets a tuner-routed serving tier sit
  // on top of a dynamic graph.
  CsrGraph base = strip_self_loops(rmat_graph());
  DynamicSolver dyn(base, {.machine = {.num_ranks = 3}});
  SsspOptions options = SsspOptions::rho_stepping(512);
  options.track_parents = true;

  const vid_t root = 5;
  const SsspResult prior = dyn.solve(root, options);

  std::mt19937_64 rng(42);
  EdgeBatch batch;
  std::uniform_int_distribution<vid_t> pick(0, dyn.graph().num_vertices() - 1);
  while (batch.size() < 12) {
    vid_t u = pick(rng), v = pick(rng);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (dyn.graph().has_edge(u, v)) {
      batch.update_weight(u, v, static_cast<weight_t>(1 + rng() % 64));
    } else {
      batch.insert_edge(u, v, static_cast<weight_t>(1 + rng() % 64));
    }
  }
  const AppliedBatch applied = dyn.apply(batch);

  const std::vector<AppliedBatch> receipts = {applied};
  const SsspResult repaired = dyn.repair(root, prior, receipts, options);

  // Fresh stepping solve of the mutated graph, via the Solver front end.
  Solver fresh(dyn.graph().base(), {.machine = {.num_ranks = 3}});
  const SsspResult want = fresh.solve(root, options);
  EXPECT_EQ(repaired.dist, want.dist);
  EXPECT_EQ(repaired.parent, want.parent);
}

// --- Serve-layer routing ---------------------------------------------------

TEST(SteppingEngine, ExplicitSteppingQueriesServeBitIdenticalAnswers) {
  const CsrGraph g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 3}});
  ServeConfig config;
  config.machine.num_ranks = 3;
  QueryEngine engine(g, config);

  for (const SsspOptions& options :
       {SsspOptions::rho_stepping(512), SsspOptions::delta_star(25),
        SsspOptions::radius_stepping(2)}) {
    const QueryResult first = engine.query(17, options);
    ASSERT_NE(first.answer, nullptr);
    EXPECT_FALSE(first.from_cache);
    EXPECT_EQ(first.answer->dist, solver.solve(17, options).dist);
    EXPECT_GT(first.answer->stats.stepping_relaxations, 0u);
    // The options signature includes algo + step parameters, so each
    // stepping answer is its own cache entry — and a hit the second time.
    EXPECT_TRUE(engine.query(17, options).from_cache);
  }
}

TEST(SteppingEngine, SubmitValidatesStepParameters) {
  const CsrGraph g = CsrGraph::from_edges(make_path(8));
  ServeConfig config;
  config.machine.num_ranks = 2;
  QueryEngine engine(g, config);
  SsspOptions rho = SsspOptions::rho_stepping(1);
  rho.rho = 0;
  EXPECT_THROW(engine.submit(0, rho), std::invalid_argument);
  SsspOptions rad = SsspOptions::radius_stepping(1);
  rad.radius_k = 0;
  EXPECT_THROW(engine.submit(0, rad), std::invalid_argument);
}

}  // namespace
}  // namespace parsssp
