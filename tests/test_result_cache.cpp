// ResultCache: exact LRU semantics, hit/miss/eviction counters, and the
// option-signature key that keeps distinct configurations from colliding.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "serve/result_cache.hpp"

namespace parsssp {
namespace {

std::shared_ptr<const QueryAnswer> answer_for(vid_t root) {
  auto a = std::make_shared<QueryAnswer>();
  a->root = root;
  a->dist = {root, root + 1};
  return a;
}

TEST(OptionsSignature, DistinguishesEveryResultAffectingField) {
  const std::string base = options_signature(SsspOptions::del(25));
  EXPECT_EQ(base, options_signature(SsspOptions::del(25)));  // deterministic
  EXPECT_NE(base, options_signature(SsspOptions::del(26)));
  EXPECT_NE(base, options_signature(SsspOptions::prune(25)));
  EXPECT_NE(base, options_signature(SsspOptions::opt(25)));

  SsspOptions parents = SsspOptions::del(25);
  parents.track_parents = true;
  EXPECT_NE(base, options_signature(parents));

  SsspOptions lambda = SsspOptions::del(25);
  lambda.load_lambda += 1e-9;  // tiny double deltas must not collide
  EXPECT_NE(options_signature(SsspOptions::del(25)),
            options_signature(lambda));

  SsspOptions cost = SsspOptions::del(25);
  cost.cost_model.t_relax_ns *= 2;  // changes modeled-time statistics
  EXPECT_NE(base, options_signature(cost));

  SsspOptions forced = SsspOptions::prune(25);
  forced.prune_mode = PruneMode::kForcedSequence;
  forced.forced_pull = {true, false, true};
  SsspOptions forced2 = forced;
  forced2.forced_pull = {true, false, false};
  EXPECT_NE(options_signature(forced), options_signature(forced2));
}

TEST(OptionsSignature, NegativeZeroIsCanonicalizedToPositiveZero) {
  // -0.0 and +0.0 configure bit-identical runs; a hexfloat print would
  // otherwise give them different signatures and split the cache key space.
  SsspOptions pos = SsspOptions::opt(25);
  pos.load_lambda = 0.0;
  SsspOptions neg = SsspOptions::opt(25);
  neg.load_lambda = -0.0;
  EXPECT_EQ(options_signature(pos), options_signature(neg));

  SsspOptions neg_tau = SsspOptions::del(25);
  neg_tau.hybrid_tau = -0.0;
  SsspOptions pos_tau = SsspOptions::del(25);
  pos_tau.hybrid_tau = 0.0;
  EXPECT_EQ(options_signature(neg_tau), options_signature(pos_tau));
  // Canonicalization folds the sign of zero only — a genuinely negative
  // value still signs differently from its positive counterpart.
  SsspOptions disabled = SsspOptions::del(25);
  disabled.hybrid_tau = -1.0;
  EXPECT_NE(options_signature(disabled), options_signature(pos_tau));
}

TEST(OptionsSignature, RejectsNonFiniteDoublesAtAdmission) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    SsspOptions lambda = SsspOptions::opt(25);
    lambda.load_lambda = bad;
    EXPECT_THROW(options_signature(lambda), std::invalid_argument);

    SsspOptions tau = SsspOptions::opt(25);
    tau.hybrid_tau = bad;
    EXPECT_THROW(options_signature(tau), std::invalid_argument);

    SsspOptions cost = SsspOptions::opt(25);
    cost.cost_model.t_relax_ns = bad;
    EXPECT_THROW(options_signature(cost), std::invalid_argument);
  }
}

TEST(OptionsSignature, IsStableAcrossRepeatedCalls) {
  SsspOptions opts = SsspOptions::lb_opt(13, 64);
  opts.load_lambda = 0.30000000000000004;  // not representable in decimal
  opts.hybrid_tau = 1.0 / 3.0;
  const std::string first = options_signature(opts);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(options_signature(opts), first);
  // Hexfloat round-trip: a value one ulp away must not collide.
  SsspOptions bumped = opts;
  bumped.hybrid_tau = std::nextafter(opts.hybrid_tau, 1.0);
  EXPECT_NE(options_signature(bumped), first);
}

TEST(ResultCache, TraceHookDoesNotAffectTheSignature) {
  // SsspOptions::trace is observability plumbing: a traced and an untraced
  // query must share a cache entry.
  TraceRecorder recorder;
  SsspOptions traced = SsspOptions::opt(25);
  traced.trace = &recorder;
  EXPECT_EQ(options_signature(traced),
            options_signature(SsspOptions::opt(25)));
}

TEST(ResultCache, HitsRefreshRecencyAndLruEvicts) {
  ResultCache cache(2);
  const std::string sig = options_signature(SsspOptions::del(25));
  cache.insert(1, sig, answer_for(1));
  cache.insert(2, sig, answer_for(2));
  ASSERT_NE(cache.lookup(1, sig), nullptr);  // 1 is now most recent
  cache.insert(3, sig, answer_for(3));       // evicts 2, not 1
  EXPECT_NE(cache.lookup(1, sig), nullptr);
  EXPECT_EQ(cache.lookup(2, sig), nullptr);
  EXPECT_NE(cache.lookup(3, sig), nullptr);

  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.insertions, 3u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, HitReturnsTheStoredAnswerObject) {
  ResultCache cache(4);
  const std::string sig = options_signature(SsspOptions::opt(25));
  const auto stored = answer_for(9);
  cache.insert(9, sig, stored);
  const auto hit = cache.lookup(9, sig);
  EXPECT_EQ(hit.get(), stored.get());  // shared, not copied or recomputed
}

TEST(ResultCache, SignatureSeparatesSameRoot) {
  ResultCache cache(4);
  const std::string del_sig = options_signature(SsspOptions::del(25));
  const std::string opt_sig = options_signature(SsspOptions::opt(25));
  cache.insert(5, del_sig, answer_for(5));
  EXPECT_EQ(cache.lookup(5, opt_sig), nullptr);
  EXPECT_NE(cache.lookup(5, del_sig), nullptr);
}

TEST(ResultCache, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  const std::string sig = options_signature(SsspOptions::del(25));
  cache.insert(1, sig, answer_for(1));
  cache.insert(1, sig, answer_for(1));  // refresh, no growth, no eviction
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().insertions, 1u);
  EXPECT_EQ(cache.counters().evictions, 0u);
}

TEST(OptionsSignature, CanonicalParentsChangesTheSignature) {
  SsspOptions plain = SsspOptions::del(25);
  plain.track_parents = true;
  SsspOptions canon = plain;
  canon.canonical_parents = true;
  EXPECT_NE(options_signature(plain), options_signature(canon));
  EXPECT_NE(options_signature(canon).find(";canon="), std::string::npos);
}

TEST(ResultCache, VersionMismatchMissesAndDropsTheStaleEntry) {
  ResultCache cache(4);
  const std::string sig = options_signature(SsspOptions::del(25));
  cache.insert(1, sig, answer_for(1), /*version=*/3);
  EXPECT_NE(cache.lookup(1, sig, 3), nullptr);  // same generation: hit

  // A newer graph generation must never surface the stale answer — and the
  // entry is gone afterwards, even for the old version.
  EXPECT_EQ(cache.lookup(1, sig, 4), nullptr);
  EXPECT_EQ(cache.lookup(1, sig, 3), nullptr);
  EXPECT_EQ(cache.size(), 0u);

  const auto c = cache.counters();
  EXPECT_EQ(c.version_misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 2u);  // the version miss counts as a miss too
}

TEST(ResultCache, ReinsertUnderNewVersionServesAgain) {
  ResultCache cache(4);
  const std::string sig = options_signature(SsspOptions::opt(25));
  cache.insert(7, sig, answer_for(7), 1);
  EXPECT_EQ(cache.lookup(7, sig, 2), nullptr);
  cache.insert(7, sig, answer_for(7), 2);
  EXPECT_NE(cache.lookup(7, sig, 2), nullptr);
}

TEST(ResultCache, InvalidateAllAndClearDropEverythingAndCount) {
  ResultCache cache(8);
  const std::string sig = options_signature(SsspOptions::del(25));
  cache.insert(1, sig, answer_for(1));
  cache.insert(2, sig, answer_for(2));
  EXPECT_EQ(cache.invalidate_all(), 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(1, sig), nullptr);
  EXPECT_EQ(cache.counters().invalidations, 2u);

  cache.insert(3, sig, answer_for(3));
  EXPECT_EQ(cache.clear(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.counters().clears, 1u);
  EXPECT_EQ(cache.counters().invalidations, 2u);  // distinct counters
  EXPECT_EQ(cache.invalidate_all(), 0u);          // empty: counts nothing
  EXPECT_EQ(cache.counters().invalidations, 2u);
}

TEST(ResultCache, CapacityZeroDisables) {
  ResultCache cache(0);
  const std::string sig = options_signature(SsspOptions::del(25));
  cache.insert(1, sig, answer_for(1));
  EXPECT_EQ(cache.lookup(1, sig), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.counters().insertions, 0u);
  EXPECT_EQ(cache.counters().hit_rate(), 0.0);
}

}  // namespace
}  // namespace parsssp
