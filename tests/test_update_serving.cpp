// QueryEngine in dynamic mode: versioned cache invalidation (a stale
// answer is never served), failed batches leaving the graph and the cache
// untouched, exactness across compactions, and — under the opt-in
// ServeConfig::fence_updates — update batches serialized through the same
// FIFO as queries. MVCC-specific behaviour (concurrent serving, snapshot
// lifecycle) lives in test_snapshot.cpp and test_serve_races.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"
#include "serve/query_engine.hpp"
#include "update/dynamic_graph.hpp"

namespace parsssp {
namespace {

using namespace std::chrono_literals;

CsrGraph rmat_graph(std::uint64_t seed, int scale = 7) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return strip_self_loops(CsrGraph::from_edges(generate_rmat(cfg)));
}

ServeConfig serve_config(rank_t ranks, std::size_t cache = 64) {
  ServeConfig config;
  config.machine.num_ranks = ranks;
  config.machine.checked_exchange = true;
  config.max_batch = 4;
  config.batch_window = 200us;
  config.cache_capacity = cache;
  return config;
}

/// An edge of `v` plus a non-edge of `v`, for building valid batches.
struct Probe {
  vid_t neighbor = 0;
  weight_t w = 0;
  vid_t non_neighbor = 0;
};

Probe probe_vertex(const DynamicGraph& g, vid_t v) {
  Probe p;
  const std::vector<Arc> arcs = g.arcs_of(v);
  EXPECT_FALSE(arcs.empty());
  p.neighbor = arcs.front().to;
  p.w = arcs.front().w;
  p.non_neighbor = v;
  do {
    p.non_neighbor = (p.non_neighbor + 1) % g.num_vertices();
  } while (p.non_neighbor == v || g.has_edge(v, p.non_neighbor));
  return p;
}

TEST(UpdateServing, StaleCachedAnswerIsNeverServed) {
  DynamicGraph graph(rmat_graph(11));
  QueryEngine engine(graph, serve_config(3));
  const SsspOptions options = SsspOptions::del(25);
  const vid_t root = 5;

  const QueryResult before = engine.query(root, options);
  EXPECT_TRUE(engine.query(root, options).from_cache);  // warm at version 0

  // Shorten the first edge out of the root: the cached answer is now wrong.
  const Probe p = probe_vertex(graph, root);
  const UpdateResult applied =
      engine.update(EdgeBatch{}.update_weight(root, p.neighbor, 1).insert_edge(
          root, p.non_neighbor, 1));
  EXPECT_EQ(applied.version, 1u);
  EXPECT_EQ(applied.ops, 2u);
  EXPECT_EQ(engine.graph_version(), 1u);

  const QueryResult after = engine.query(root, options);
  EXPECT_FALSE(after.from_cache);  // version mismatch dropped the entry
  EXPECT_EQ(after.answer->dist, dijkstra_distances(graph.materialize(), root));
  EXPECT_NE(after.answer.get(), before.answer.get());

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.graph_version, 1u);
  EXPECT_GE(stats.cache.version_misses, 1u);

  // Re-cached under the new version: hits again until the next update.
  EXPECT_TRUE(engine.query(root, options).from_cache);
}

TEST(UpdateServing, FifoOrderSplitsOldAndNewGraphQueries) {
  DynamicGraph graph(rmat_graph(13));
  const std::vector<dist_t> old_dist = dijkstra_distances(graph.base(), 3);
  const Probe p = probe_vertex(graph, 3);

  // Expected answers per version, computed up front on a mirror (the engine
  // owns `graph` once serving starts).
  const EdgeBatch batch1 = EdgeBatch{}.insert_edge(3, p.non_neighbor, 1);
  const EdgeBatch batch2 = EdgeBatch{}.update_weight(3, p.non_neighbor, 200);
  DynamicGraph mirror(graph.base());
  mirror.apply(batch1);
  const std::vector<dist_t> v1_dist = dijkstra_distances(mirror.materialize(), 3);

  ServeConfig config = serve_config(2, /*cache=*/0);
  config.batch_window = 60s;  // only an update fence can close a batch
  config.fence_updates = true;
  QueryEngine engine(graph, config);
  const SsspOptions options = SsspOptions::del(25);

  // Admission order: query | update | query | update. The long window
  // proves the fences close the query prefixes — each query would
  // otherwise wait out the minute.
  std::future<QueryResult> before = engine.submit(3, options);
  std::future<UpdateResult> update1 = engine.apply_updates(batch1);
  std::future<QueryResult> after = engine.submit(3, options);
  std::future<UpdateResult> update2 = engine.apply_updates(batch2);

  EXPECT_EQ(before.get().answer->dist, old_dist);  // pre-update graph
  EXPECT_EQ(update1.get().version, 1u);
  EXPECT_EQ(after.get().answer->dist, v1_dist);    // between the updates
  EXPECT_EQ(update2.get().version, 2u);
  mirror.apply(batch2);
  EXPECT_EQ(graph.materialize_edges().edges(),
            mirror.materialize_edges().edges());
}

TEST(UpdateServing, FailedBatchLeavesGraphCacheAndServingIntact) {
  DynamicGraph graph(rmat_graph(17));
  QueryEngine engine(graph, serve_config(2));
  const SsspOptions options = SsspOptions::del(25);
  const QueryResult before = engine.query(9, options);

  // Second op is invalid (deletes an absent edge): the whole batch must
  // reject, with the validation error surfacing through the future.
  const Probe p = probe_vertex(graph, 9);
  std::future<UpdateResult> failed = engine.apply_updates(
      EdgeBatch{}.update_weight(9, p.neighbor, 7).delete_edge(
          9, p.non_neighbor));
  EXPECT_THROW(failed.get(), std::invalid_argument);

  // Nothing changed: version still 0, the cached answer is still valid and
  // still served, and the engine keeps serving exact answers.
  EXPECT_EQ(engine.graph_version(), 0u);
  EXPECT_EQ(engine.stats().updates, 0u);
  const QueryResult again = engine.query(9, options);
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(again.answer.get(), before.answer.get());
  EXPECT_EQ(graph.find_edge(9, p.neighbor), p.w);  // weight untouched
}

TEST(UpdateServing, StaticEngineRejectsUpdates) {
  const CsrGraph g = rmat_graph(19);
  QueryEngine engine(g, serve_config(2));
  EXPECT_THROW(engine.apply_updates(EdgeBatch{}.insert_edge(0, 1, 1)),
               std::logic_error);
  EXPECT_EQ(engine.graph_version(), 0u);
}

TEST(UpdateServing, DynamicAdmissionValidatesRootsUpFront) {
  DynamicGraph graph(rmat_graph(19));
  QueryEngine engine(graph, serve_config(2));
  EXPECT_THROW(engine.submit(graph.num_vertices(), SsspOptions::del(25)),
               std::out_of_range);
  // Out-of-range endpoints in a batch surface through the future (the
  // batch is validated where it is applied, atomically).
  std::future<UpdateResult> bad = engine.apply_updates(
      EdgeBatch{}.insert_edge(0, graph.num_vertices(), 1));
  EXPECT_THROW(bad.get(), std::invalid_argument);
}

TEST(UpdateServing, ServesExactlyAcrossCompactions) {
  // compact_min 1 + ratio 0: every apply() compacts, so every update takes
  // the rebuild-views path instead of the per-vertex patch path.
  DynamicGraph graph(rmat_graph(23),
                     DynamicGraphConfig{.compact_ratio = 0, .compact_min = 1});
  QueryEngine engine(graph, serve_config(3));
  const SsspOptions options = SsspOptions::del(25);

  for (int round = 0; round < 3; ++round) {
    const vid_t v = static_cast<vid_t>(7 + round);
    const Probe p = probe_vertex(graph, v);
    const UpdateResult applied = engine.update(
        EdgeBatch{}.insert_edge(v, p.non_neighbor, 2).update_weight(
            v, p.neighbor, p.w + 3));
    EXPECT_TRUE(applied.compacted);
    const QueryResult r = engine.query(v, options);
    EXPECT_EQ(r.answer->dist, dijkstra_distances(graph.materialize(), v))
        << "round " << round;
  }
  EXPECT_EQ(engine.graph_version(), 3u);
}

TEST(UpdateServing, ParentsStayCanonicalThroughUpdates) {
  DynamicGraph graph(rmat_graph(29));
  QueryEngine engine(graph, serve_config(2));
  SsspOptions options = SsspOptions::del(25);
  options.track_parents = true;

  const Probe p = probe_vertex(graph, 2);
  engine.update(EdgeBatch{}.insert_edge(2, p.non_neighbor, 1));
  const QueryResult served = engine.query(2, options);

  // Any tight-predecessor tree is acceptable from the serving layer; check
  // the tree invariant directly against the mutated graph.
  const CsrGraph now = graph.materialize();
  const std::vector<dist_t> dist = dijkstra_distances(now, 2);
  ASSERT_EQ(served.answer->dist, dist);
  const auto& parent = served.answer->parent;
  ASSERT_EQ(parent.size(), now.num_vertices());
  for (vid_t v = 0; v < now.num_vertices(); ++v) {
    if (v == 2) {
      EXPECT_EQ(parent[v], 2u);
    } else if (dist[v] == kInfDist) {
      EXPECT_EQ(parent[v], kInvalidVid);
    } else {
      bool tight = false;
      for (const Arc& a : now.neighbors(v)) {
        if (a.to == parent[v] && dist[a.to] + a.w == dist[v]) tight = true;
      }
      EXPECT_TRUE(tight) << "v=" << v;
    }
  }
}

}  // namespace
}  // namespace parsssp
