#include "core/buckets.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

TEST(BucketOf, BasicMapping) {
  EXPECT_EQ(bucket_of(0, 10), 0u);
  EXPECT_EQ(bucket_of(9, 10), 0u);
  EXPECT_EQ(bucket_of(10, 10), 1u);
  EXPECT_EQ(bucket_of(25, 10), 2u);
  EXPECT_EQ(bucket_of(kInfDist, 10), kInfBucket);
}

TEST(BucketOf, DeltaOne) {
  EXPECT_EQ(bucket_of(7, 1), 7u);
}

TEST(CollectBucketMembers, FiltersBySettledAndBucket) {
  const std::vector<dist_t> dist{0, 5, 10, 15, kInfDist, 7};
  const std::vector<char> settled{0, 1, 0, 0, 0, 0};
  const auto members = collect_bucket_members(dist, settled, 0, 10);
  // Bucket 0 with delta 10: dist < 10 -> locals {0, 1, 5}; 1 is settled.
  EXPECT_EQ(members, (std::vector<vid_t>{0, 5}));
}

TEST(CollectBucketMembers, InfNeverMember) {
  const std::vector<dist_t> dist{kInfDist, kInfDist};
  const std::vector<char> settled{0, 0};
  EXPECT_TRUE(collect_bucket_members(dist, settled, 0, 10).empty());
}

TEST(MinUnsettledBucketAbove, FindsStrictlyGreater) {
  const std::vector<dist_t> dist{0, 25, 57, kInfDist};
  const std::vector<char> settled{0, 0, 0, 0};
  EXPECT_EQ(min_unsettled_bucket_above(dist, settled, kBeforeFirst, 10), 0u);
  EXPECT_EQ(min_unsettled_bucket_above(dist, settled, 0, 10), 2u);
  EXPECT_EQ(min_unsettled_bucket_above(dist, settled, 2, 10), 5u);
  EXPECT_EQ(min_unsettled_bucket_above(dist, settled, 5, 10), kInfBucket);
}

TEST(MinUnsettledBucketAbove, IgnoresSettled) {
  const std::vector<dist_t> dist{0, 25};
  const std::vector<char> settled{1, 0};
  EXPECT_EQ(min_unsettled_bucket_above(dist, settled, kBeforeFirst, 10), 2u);
}

TEST(MinUnsettledBucketAbove, EmptySlice) {
  const std::vector<dist_t> dist;
  const std::vector<char> settled;
  EXPECT_EQ(min_unsettled_bucket_above(dist, settled, kBeforeFirst, 10),
            kInfBucket);
}

TEST(CollectUnsettledReached, GroupedBucketContents) {
  const std::vector<dist_t> dist{3, kInfDist, 99, 4};
  const std::vector<char> settled{1, 0, 0, 0};
  EXPECT_EQ(collect_unsettled_reached(dist, settled),
            (std::vector<vid_t>{2, 3}));
}

}  // namespace
}  // namespace parsssp
