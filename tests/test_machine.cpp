#include "runtime/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace parsssp {
namespace {

TEST(Machine, RunsEveryRankOnce) {
  Machine m({.num_ranks = 6});
  std::vector<int> visits(6, 0);
  m.run([&](RankCtx& ctx) { visits[ctx.rank()]++; });
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(Machine, RankIdentity) {
  Machine m({.num_ranks = 4});
  m.run([&](RankCtx& ctx) {
    EXPECT_LT(ctx.rank(), 4u);
    EXPECT_EQ(ctx.num_ranks(), 4u);
  });
}

TEST(Machine, ZeroRanksClampedToOne) {
  Machine m({.num_ranks = 0});
  EXPECT_EQ(m.num_ranks(), 1u);
  int runs = 0;
  m.run([&](RankCtx&) { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(Machine, ExchangeDeliversPointToPoint) {
  constexpr rank_t R = 4;
  Machine m({.num_ranks = R});
  m.run([&](RankCtx& ctx) {
    // Every rank sends its rank id repeated (dest+1) times to each dest.
    std::vector<std::vector<std::uint32_t>> out(R);
    for (rank_t d = 0; d < R; ++d) {
      out[d].assign(d + 1, ctx.rank());
    }
    const auto in = ctx.exchange(std::move(out), PhaseKind::kShortPhase);
    ASSERT_EQ(in.size(), R);
    for (rank_t s = 0; s < R; ++s) {
      ASSERT_EQ(in[s].size(), ctx.rank() + 1u);
      for (const auto v : in[s]) EXPECT_EQ(v, s);
    }
  });
}

TEST(Machine, ExchangeSelfDelivery) {
  Machine m({.num_ranks = 2});
  m.run([&](RankCtx& ctx) {
    std::vector<std::vector<int>> out(2);
    out[ctx.rank()] = {static_cast<int>(ctx.rank()) + 100};
    const auto in = ctx.exchange(std::move(out), PhaseKind::kShortPhase);
    ASSERT_EQ(in[ctx.rank()].size(), 1u);
    EXPECT_EQ(in[ctx.rank()][0], static_cast<int>(ctx.rank()) + 100);
  });
}

TEST(Machine, ExchangeRepeatedRounds) {
  constexpr rank_t R = 3;
  Machine m({.num_ranks = R});
  m.run([&](RankCtx& ctx) {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::vector<int>> out(R);
      const rank_t next = (ctx.rank() + 1) % R;
      out[next] = {round * 10 + static_cast<int>(ctx.rank())};
      const auto in = ctx.exchange(std::move(out), PhaseKind::kLongPush);
      const rank_t prev = (ctx.rank() + R - 1) % R;
      ASSERT_EQ(in[prev].size(), 1u);
      EXPECT_EQ(in[prev][0], round * 10 + static_cast<int>(prev));
    }
  });
}

TEST(Machine, CollectivesInsideJob) {
  constexpr rank_t R = 5;
  Machine m({.num_ranks = R});
  m.run([&](RankCtx& ctx) {
    const auto sum =
        ctx.allreduce<std::uint64_t>(ctx.rank(), SumOp{});
    EXPECT_EQ(sum, 0u + 1 + 2 + 3 + 4);
    const auto gathered = ctx.allgather<std::uint32_t>(ctx.rank() * 2);
    for (rank_t r = 0; r < R; ++r) EXPECT_EQ(gathered[r], r * 2);
  });
}

TEST(Machine, TrafficCountsMessagesNotSelf) {
  constexpr rank_t R = 3;
  Machine m({.num_ranks = R});
  m.run([&](RankCtx& ctx) {
    std::vector<std::vector<std::uint64_t>> out(R);
    for (rank_t d = 0; d < R; ++d) out[d] = {1, 2};  // 2 msgs to everyone
    ctx.exchange(std::move(out), PhaseKind::kLongPush);
  });
  const TrafficCounters merged = m.traffic().merged();
  // Each rank sends 2 msgs to each of the 2 *other* ranks.
  const auto idx = static_cast<std::size_t>(PhaseKind::kLongPush);
  EXPECT_EQ(merged.messages[idx], 3u * 2 * 2);
  EXPECT_EQ(merged.bytes[idx], 3u * 2 * 2 * sizeof(std::uint64_t));
}

TEST(Machine, TrafficResetBetweenRuns) {
  Machine m({.num_ranks = 2});
  auto job = [](RankCtx& ctx) {
    std::vector<std::vector<int>> out(2);
    out[1 - ctx.rank()] = {1};
    ctx.exchange(std::move(out), PhaseKind::kShortPhase);
  };
  m.run(job);
  const auto first = m.traffic().merged().total_messages();
  m.run(job);
  EXPECT_EQ(m.traffic().merged().total_messages(), first);
}

TEST(Machine, ExceptionPropagates) {
  Machine m({.num_ranks = 3});
  EXPECT_THROW(
      m.run([](RankCtx&) { throw std::runtime_error("rank failure"); }),
      std::runtime_error);
}

TEST(Machine, LanesPerRankConfig) {
  Machine m({.num_ranks = 2, .lanes_per_rank = 3});
  m.run([&](RankCtx& ctx) { EXPECT_EQ(ctx.pool().lanes(), 3u); });
}

TEST(Machine, ManyRanksStress) {
  constexpr rank_t R = 32;
  Machine m({.num_ranks = R});
  std::atomic<std::uint64_t> total{0};
  m.run([&](RankCtx& ctx) {
    const auto sum = ctx.allreduce<std::uint64_t>(1, SumOp{});
    total += sum;
  });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(R) * R);
}

}  // namespace
}  // namespace parsssp
