// Distributed direction-optimizing BFS against the sequential BFS oracle.
#include <gtest/gtest.h>

#include "core/bfs_engine.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph(std::uint32_t scale, std::uint64_t seed = 1) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

TEST(BfsEngine, MatchesSequentialBfs) {
  const auto g = rmat_graph(9);
  BfsSolver solver(g, {.num_ranks = 4});
  for (const vid_t root : sample_roots(g, 3, 1)) {
    const BfsResult r = solver.solve(root);
    EXPECT_EQ(r.level, bfs_levels(g, root)) << "root=" << root;
  }
}

TEST(BfsEngine, TopDownOnlyMatchesToo) {
  const auto g = rmat_graph(9, 3);
  BfsSolver solver(g, {.num_ranks = 4});
  const vid_t root = sample_roots(g, 1, 1).at(0);
  BfsOptions o;
  o.direction_optimize = false;
  const BfsResult r = solver.solve(root, o);
  EXPECT_EQ(r.level, bfs_levels(g, root));
  EXPECT_EQ(r.stats.bottom_up_steps, 0u);
}

TEST(BfsEngine, DirectionOptimizationUsesBottomUp) {
  // A dense scale-free graph with a well-connected root triggers the
  // bottom-up regime in the middle levels.
  const auto g = rmat_graph(10, 5);
  BfsSolver solver(g, {.num_ranks = 4});
  const vid_t root = sample_roots(g, 1, 1).at(0);
  const BfsResult r = solver.solve(root);
  EXPECT_GT(r.stats.bottom_up_steps, 0u);
  EXPECT_GT(r.stats.top_down_steps, 0u);
  EXPECT_EQ(r.level, bfs_levels(g, root));
}

TEST(BfsEngine, BottomUpExaminesFewerEdgesThanTopDown) {
  const auto g = rmat_graph(10, 5);
  BfsSolver solver(g, {.num_ranks = 4});
  const vid_t root = sample_roots(g, 1, 1).at(0);
  BfsOptions topdown;
  topdown.direction_optimize = false;
  const auto td = solver.solve(root, topdown);
  const auto dir = solver.solve(root);
  EXPECT_LT(dir.stats.edges_examined, td.stats.edges_examined);
}

TEST(BfsEngine, ParentsFormValidTree) {
  const auto g = rmat_graph(9, 7);
  BfsSolver solver(g, {.num_ranks = 3});
  const vid_t root = sample_roots(g, 1, 1).at(0);
  BfsOptions o;
  o.track_parents = true;
  const BfsResult r = solver.solve(root, o);
  ASSERT_EQ(r.parent.size(), g.num_vertices());
  EXPECT_EQ(r.parent[root], root);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.level[v] == kInfDist) {
      EXPECT_EQ(r.parent[v], kInvalidVid);
      continue;
    }
    if (v == root) continue;
    const vid_t p = r.parent[v];
    ASSERT_LT(p, g.num_vertices());
    EXPECT_EQ(r.level[p] + 1, r.level[v]) << "v=" << v;
  }
}

TEST(BfsEngine, DisconnectedGraph) {
  EdgeList list(6);
  list.add_edge(0, 1, 1);
  list.add_edge(1, 2, 1);
  list.add_edge(4, 5, 1);
  const auto g = CsrGraph::from_edges(list);
  BfsSolver solver(g, {.num_ranks = 3});
  const BfsResult r = solver.solve(0);
  EXPECT_EQ(r.level[2], 2u);
  EXPECT_EQ(r.level[4], kInfDist);
  EXPECT_EQ(r.stats.levels, 3u);  // levels 0, 1, 2
}

TEST(BfsEngine, RankCountInvariance) {
  const auto g = rmat_graph(9, 11);
  const vid_t root = sample_roots(g, 1, 1).at(0);
  std::vector<dist_t> reference;
  for (const rank_t ranks : {1u, 2u, 8u}) {
    BfsSolver solver(g, {.num_ranks = ranks});
    const BfsResult r = solver.solve(root);
    if (reference.empty()) {
      reference = r.level;
    } else {
      EXPECT_EQ(r.level, reference) << "ranks=" << ranks;
    }
  }
}

TEST(BfsEngine, StatsPopulated) {
  const auto g = rmat_graph(9);
  BfsSolver solver(g, {.num_ranks = 2});
  const vid_t root = sample_roots(g, 1, 1).at(0);
  const BfsResult r = solver.solve(root);
  EXPECT_GT(r.stats.levels, 0u);
  EXPECT_GT(r.stats.edges_examined, 0u);
  EXPECT_GT(r.stats.model_time_s, 0.0);
  EXPECT_GT(r.stats.gteps(g.num_undirected_edges()), 0.0);
}

}  // namespace
}  // namespace parsssp
