#include "graph/graph_algos.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/rmat.hpp"

namespace parsssp {
namespace {

CsrGraph path_graph(std::size_t n) {
  EdgeList list;
  for (vid_t i = 0; i + 1 < n; ++i) list.add_edge(i, i + 1, 1);
  return CsrGraph::from_edges(list);
}

CsrGraph two_components() {
  EdgeList list(6);
  list.add_edge(0, 1, 1);
  list.add_edge(1, 2, 1);
  list.add_edge(3, 4, 1);
  return CsrGraph::from_edges(list);  // {0,1,2}, {3,4}, {5}
}

TEST(BfsLevels, PathLevels) {
  const auto g = path_graph(5);
  const auto levels = bfs_levels(g, 0);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(levels[v], v);
}

TEST(BfsLevels, UnreachableIsInf) {
  const auto g = two_components();
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[3], kInfDist);
  EXPECT_EQ(levels[5], kInfDist);
}

TEST(BfsLevels, RootOutOfRange) {
  const auto g = path_graph(3);
  const auto levels = bfs_levels(g, 99);
  EXPECT_TRUE(std::all_of(levels.begin(), levels.end(),
                          [](dist_t d) { return d == kInfDist; }));
}

TEST(ReachableCount, CountsComponent) {
  const auto g = two_components();
  EXPECT_EQ(reachable_count(g, 0), 3u);
  EXPECT_EQ(reachable_count(g, 3), 2u);
  EXPECT_EQ(reachable_count(g, 5), 1u);
}

TEST(Components, LabelsAndGiant) {
  const auto g = two_components();
  const Components c = connected_components(g);
  EXPECT_EQ(c.num_components, 3u);
  EXPECT_EQ(c.giant_size, 3u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[3], c.label[5]);
}

TEST(BfsDepth, Path) {
  EXPECT_EQ(bfs_depth(path_graph(7), 0), 6u);
  EXPECT_EQ(bfs_depth(path_graph(7), 3), 3u);
}

TEST(SampleRoots, CountAndDegree) {
  RmatConfig cfg;
  cfg.scale = 10;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  const auto roots = sample_roots(g, 8, 1);
  EXPECT_EQ(roots.size(), 8u);
  for (const vid_t r : roots) EXPECT_GT(g.degree(r), 0u);
}

TEST(SampleRoots, Distinct) {
  RmatConfig cfg;
  cfg.scale = 10;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  auto roots = sample_roots(g, 16, 2);
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(std::adjacent_find(roots.begin(), roots.end()), roots.end());
}

TEST(SampleRoots, Deterministic) {
  RmatConfig cfg;
  cfg.scale = 9;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  EXPECT_EQ(sample_roots(g, 4, 5), sample_roots(g, 4, 5));
}

TEST(SampleRoots, SmallGraphFallback) {
  const auto g = path_graph(3);
  const auto roots = sample_roots(g, 10, 1);
  // Only 3 vertices exist; all have degree > 0.
  EXPECT_LE(roots.size(), 3u);
  EXPECT_GE(roots.size(), 1u);
}

}  // namespace
}  // namespace parsssp
