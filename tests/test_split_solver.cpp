// SplitSolver: the inter-node load-balancing tier wrapped around Solver.
#include <gtest/gtest.h>

#include "core/split_solver.hpp"
#include "core/validate.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

EdgeList rmat_list(std::uint32_t scale, std::uint64_t seed = 1) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return generate_rmat(cfg);
}

TEST(SplitSolver, DistancesMatchOracle) {
  const EdgeList list = rmat_list(9);
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitSolver solver(list, {.solver = {.machine = {.num_ranks = 4}},
                            .degree_threshold = 32});
  ASSERT_GT(solver.num_split_vertices(), 0u);
  for (const vid_t root : sample_roots(g, 3, 1)) {
    const auto r = solver.solve(root, SsspOptions::opt(25));
    EXPECT_EQ(r.dist, dijkstra_distances(g, root)) << "root=" << root;
  }
}

TEST(SplitSolver, AutoThreshold) {
  const EdgeList list = rmat_list(9);
  SplitSolver solver(list, {.solver = {.machine = {.num_ranks = 2}}});
  EXPECT_GT(solver.threshold_used(), 0u);
  const CsrGraph g = CsrGraph::from_edges(list);
  const vid_t root = sample_roots(g, 1, 1).at(0);
  const auto r = solver.solve(root, SsspOptions::opt(25));
  EXPECT_EQ(r.dist, dijkstra_distances(g, root));
}

TEST(SplitSolver, NoHeavyVerticesIsHarmless) {
  EdgeList list;
  for (vid_t i = 0; i < 20; ++i) list.add_edge(i, i + 1, 3);
  SplitSolver solver(list, {.solver = {.machine = {.num_ranks = 2}},
                            .degree_threshold = 100});
  EXPECT_EQ(solver.num_proxies(), 0u);
  const CsrGraph g = CsrGraph::from_edges(list);
  const auto r = solver.solve(0, SsspOptions::del(10));
  EXPECT_EQ(r.dist, dijkstra_distances(g, 0));
}

TEST(SplitSolver, ParentTreeProjectsBackToOriginalIds) {
  const EdgeList list = rmat_list(9, 3);
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitSolver solver(list, {.solver = {.machine = {.num_ranks = 4}},
                            .degree_threshold = 32});
  SsspOptions o = SsspOptions::opt(25);
  o.track_parents = true;
  for (const vid_t root : sample_roots(g, 2, 7)) {
    const auto r = solver.solve(root, o);
    ASSERT_EQ(r.parent.size(), g.num_vertices());
    const auto rep = check_parent_tree(g, root, r.dist, r.parent);
    EXPECT_TRUE(rep.ok) << "root=" << root << ": " << rep.message;
  }
}

TEST(SplitSolver, StarGraphHubSplit) {
  EdgeList list;
  for (vid_t leaf = 1; leaf <= 200; ++leaf) {
    list.add_edge(0, leaf, 1 + leaf % 50);
  }
  const CsrGraph g = CsrGraph::from_edges(list);
  SplitSolver solver(list, {.solver = {.machine = {.num_ranks = 4}},
                            .degree_threshold = 16});
  EXPECT_EQ(solver.num_split_vertices(), 1u);
  EXPECT_GE(solver.num_proxies(), 200u / 16);
  SsspOptions o = SsspOptions::lb_opt(25, 16);
  o.track_parents = true;
  // Root at the hub and at a leaf.
  for (const vid_t root : {vid_t{0}, vid_t{77}}) {
    const auto r = solver.solve(root, o);
    EXPECT_EQ(r.dist, dijkstra_distances(g, root)) << "root=" << root;
    const auto rep = check_parent_tree(g, root, r.dist, r.parent);
    EXPECT_TRUE(rep.ok) << "root=" << root << ": " << rep.message;
  }
}

TEST(SplitSolver, TransformedGraphVisible) {
  const EdgeList list = rmat_list(8);
  SplitSolver solver(list, {.solver = {.machine = {.num_ranks = 2}},
                            .degree_threshold = 16});
  const CsrGraph g = CsrGraph::from_edges(list);
  EXPECT_EQ(solver.transformed_graph().num_vertices(),
            g.num_vertices() + solver.num_proxies());
}

}  // namespace
}  // namespace parsssp
