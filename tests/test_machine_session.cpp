// MachineSession: persistent rank threads executing queued collective jobs.
// Exercises job FIFO semantics, result/error futures, cancellation, traffic
// accumulation across jobs, and bit-equality of an SSSP run on a session
// with the same run on a spawn-per-job Machine.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/delta_engine.hpp"
#include "core/solver.hpp"
#include "graph/rmat.hpp"
#include "runtime/machine_session.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

MachineConfig checked_config(rank_t ranks) {
  MachineConfig config;
  config.num_ranks = ranks;
  config.checked_exchange = true;  // protocol checks across job boundaries
  return config;
}

TEST(MachineSession, RunsBackToBackCollectiveJobs) {
  MachineSession session(checked_config(4));
  for (int job = 1; job <= 5; ++job) {
    session.run([job](RankCtx& ctx) {
      // Mix collectives and an exchange so the checked protocol sees the
      // rank round counters advance consistently across job boundaries.
      const auto sum = ctx.allreduce(std::uint64_t{1}, SumOp{});
      EXPECT_EQ(sum, ctx.num_ranks());
      std::vector<std::vector<std::uint32_t>> out(ctx.num_ranks());
      for (rank_t d = 0; d < ctx.num_ranks(); ++d) {
        out[d].push_back(ctx.rank() * 100u + static_cast<std::uint32_t>(job));
      }
      const auto in = ctx.exchange(std::move(out), PhaseKind::kControl);
      for (rank_t s = 0; s < ctx.num_ranks(); ++s) {
        ASSERT_EQ(in[s].size(), 1u);
        EXPECT_EQ(in[s][0], s * 100u + static_cast<std::uint32_t>(job));
      }
    });
  }
  EXPECT_EQ(session.jobs_completed(), 5u);
}

TEST(MachineSession, JobsRunInSubmissionOrder) {
  MachineSession session(checked_config(3));
  std::vector<int> order;  // written by rank 0 only; jobs never overlap
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(session.submit([i, &order](RankCtx& ctx) {
      if (ctx.rank() == 0) order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(MachineSession, SsspOnSessionMatchesSpawnPerJobMachine) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = 11;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  const SsspOptions options = SsspOptions::opt(25);
  constexpr rank_t kRanks = 4;

  Solver solver(g, {.machine = {.num_ranks = kRanks}});
  const auto expected = solver.solve(5, options);

  MachineSession session(checked_config(kRanks));
  const BlockPartition part(g.num_vertices(), kRanks);
  std::vector<LocalEdgeView> views(kRanks);
  session.run([&](RankCtx& ctx) {
    views[ctx.rank()] = LocalEdgeView::build(g, part, ctx.rank(),
                                             options.delta);
  });

  // Two identical solves back to back on the same session: both must match
  // the Machine-based solver bit for bit.
  for (int round = 0; round < 2; ++round) {
    std::vector<dist_t> dist(g.num_vertices(), kInfDist);
    std::vector<RankCounters> counters(kRanks);
    SsspStats stats;
    EngineShared shared;
    shared.graph = &g;
    shared.part = part;
    shared.views = &views;
    shared.dist = &dist;
    shared.root = 5;
    shared.options = &options;
    shared.rank_counters = &counters;
    shared.stats = &stats;
    session.run([&shared](RankCtx& ctx) { run_sssp_job(ctx, shared); });
    EXPECT_EQ(dist, expected.dist) << "round " << round;
  }
  EXPECT_EQ(session.jobs_completed(), 3u);  // view build + 2 solves
}

TEST(MachineSession, ErrorOnAllRanksPropagatesThroughFuture) {
  MachineSession session(checked_config(4));
  auto failing = session.submit(
      [](RankCtx&) { throw std::runtime_error("rank failure"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The session survives a failed job and keeps serving.
  session.run([](RankCtx& ctx) {
    EXPECT_EQ(ctx.allreduce(std::uint64_t{2}, SumOp{}),
              2 * std::uint64_t{ctx.num_ranks()});
  });
  EXPECT_EQ(session.jobs_completed(), 2u);
}

TEST(MachineSession, CancelPendingFailsQueuedJobsOnly) {
  MachineSession session(checked_config(2));
  std::atomic<bool> release{false};
  auto blocker = session.submit([&release](RankCtx&) {
    while (!release.load()) std::this_thread::yield();
  });
  auto queued_a = session.submit([](RankCtx&) {});
  auto queued_b = session.submit([](RankCtx&) {});
  EXPECT_EQ(session.cancel_pending(), 2u);
  release.store(true);
  EXPECT_NO_THROW(blocker.get());
  EXPECT_THROW(queued_a.get(), JobCancelled);
  EXPECT_THROW(queued_b.get(), JobCancelled);
  // Still serving after cancellation.
  session.run([](RankCtx& ctx) { ctx.barrier(); });
  EXPECT_EQ(session.jobs_completed(), 2u);  // blocker + barrier job
}

TEST(MachineSession, DestructorCancelsQueuedJobs) {
  std::future<void> queued;
  std::atomic<bool> release{false};
  {
    MachineSession session(checked_config(2));
    auto blocker = session.submit([&release](RankCtx&) {
      while (!release.load()) std::this_thread::yield();
    });
    queued = session.submit([](RankCtx&) {});
    release.store(true);
    blocker.get();
    // `queued` may or may not have started by now; destruction must either
    // run it to completion or cancel it — never hang.
  }
  try {
    queued.get();
  } catch (const JobCancelled&) {
    // acceptable: destroyed before the job started
  }
}

TEST(MachineSession, TrafficAccumulatesAcrossJobs) {
  MachineSession session(checked_config(3));
  const auto exchange_job = [](RankCtx& ctx) {
    std::vector<std::vector<std::uint64_t>> out(ctx.num_ranks());
    for (rank_t d = 0; d < ctx.num_ranks(); ++d) out[d].push_back(7);
    ctx.exchange(std::move(out), PhaseKind::kShortPhase);
  };
  session.run(exchange_job);
  const std::uint64_t after_one = session.traffic().merged().total_messages();
  EXPECT_GT(after_one, 0u);
  session.run(exchange_job);
  EXPECT_EQ(session.traffic().merged().total_messages(), 2 * after_one);
  session.reset_traffic();
  EXPECT_EQ(session.traffic().merged().total_messages(), 0u);
}

TEST(MachineSession, SingleRankRunsInline) {
  MachineSession session(checked_config(1));
  std::uint64_t sum = 0;
  session.run([&sum](RankCtx& ctx) {
    sum = ctx.allreduce(std::uint64_t{42}, SumOp{});
  });
  EXPECT_EQ(sum, 42u);
}

TEST(MachineSession, SubmitAfterShutdownThrows) {
  // Destroying and submitting concurrently is a race by contract; this
  // checks the sequential misuse only: submit on a destroyed session is
  // impossible to express, so exercise the zero-rank normalization instead.
  MachineConfig config;
  config.num_ranks = 0;  // normalized to 1
  MachineSession session(config);
  EXPECT_EQ(session.num_ranks(), 1u);
  session.run([](RankCtx& ctx) { EXPECT_EQ(ctx.num_ranks(), 1u); });
}

}  // namespace
}  // namespace parsssp
