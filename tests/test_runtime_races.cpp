// Race-stress tests for the simulated runtime, written for the TSan build
// of the sanitizer matrix (-DMPS_SANITIZE=thread; see scripts/check.sh).
// Each test maximizes interleavings of a runtime invariant the library
// relies on: lane-chunk handoff across many back-to-back generations,
// multi-rank exchange/collective traffic with full pair recording, and
// concurrent bucket relaxation through the distributed delta engine with
// intra-rank load balancing. They also run (and must pass) without TSan —
// the assertions check functional correctness of the same interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "core/options.hpp"
#include "core/solver.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/machine.hpp"
#include "runtime/machine_session.hpp"
#include "runtime/send_buffer_pool.hpp"
#include "runtime/thread_pool.hpp"
#include "seq/dijkstra.hpp"
#include "serve/query_engine.hpp"

namespace parsssp {
namespace {

// Many lanes, many overlapping generations: back-to-back parallel_for jobs
// reuse the pool's generation/pending handshake with no idle gap, so a
// worker can still be decrementing pending_ while the next job is being
// primed. Writes are deliberately non-atomic: chunks must be disjoint and
// each generation's writes must happen-before the next generation's reads.
TEST(RuntimeRaces, ParallelForOverlappingGenerations) {
  constexpr unsigned kLanes = 8;
  constexpr int kGenerations = 300;
  constexpr std::size_t kN = 4096;
  ThreadPool pool(kLanes);
  std::vector<std::uint64_t> cells(kN, 0);
  for (int g = 0; g < kGenerations; ++g) {
    pool.parallel_for(kN, [&](unsigned, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) cells[i] += i + 1;
    });
  }
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(cells[i], static_cast<std::uint64_t>(kGenerations) * (i + 1));
  }
}

// The job function is a caller-stack object whose address the workers
// dereference outside the pool mutex; a fresh lambda per iteration makes a
// lifetime bug (use-after-return of the previous job) visible to TSan/ASan.
TEST(RuntimeRaces, JobLifetimeAcrossGenerations) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (std::uint64_t g = 1; g <= 200; ++g) {
    pool.run_on_lanes([&sum, g](unsigned lane) { sum += g * (lane + 1); });
  }
  // sum over g of g * (1+2+3+4)
  EXPECT_EQ(sum.load(), 10u * (200u * 201u / 2));
}

// Nested: every lane of every rank busy at once, with lane counts chosen so
// rank threads and worker threads oversubscribe the host cores and the
// scheduler shuffles interleavings.
TEST(RuntimeRaces, MachineFullTrafficManyRanksManyLanes) {
  constexpr rank_t R = 8;
  constexpr int kRounds = 25;
  Machine m({.num_ranks = R, .lanes_per_rank = 3,
             .record_pair_traffic = true});
  m.run([&](RankCtx& ctx) {
    const rank_t r = ctx.rank();
    for (int round = 0; round < kRounds; ++round) {
      // Lane-parallel message generation into per-lane buffers, merged on
      // the rank thread — the delta engine's exact pattern.
      const unsigned lanes = ctx.pool().lanes();
      std::vector<std::vector<std::vector<std::uint64_t>>> lane_out(
          lanes, std::vector<std::vector<std::uint64_t>>(R));
      ctx.pool().parallel_for(
          R, [&](unsigned lane, std::size_t begin, std::size_t end) {
            for (std::size_t d = begin; d < end; ++d) {
              lane_out[lane][d].push_back(r * 1000 + d);
            }
          });
      std::vector<std::vector<std::uint64_t>> out(R);
      for (unsigned l = 0; l < lanes; ++l) {
        for (rank_t d = 0; d < R; ++d) {
          out[d].insert(out[d].end(), lane_out[l][d].begin(),
                        lane_out[l][d].end());
        }
      }
      const auto in = ctx.exchange(std::move(out), PhaseKind::kLongPush);
      for (rank_t s = 0; s < R; ++s) {
        ASSERT_EQ(in[s].size(), 1u);
        EXPECT_EQ(in[s][0], s * 1000u + r);
      }
      // Interleave collectives between exchange rounds.
      const auto total = ctx.allreduce<std::uint64_t>(r, SumOp{});
      EXPECT_EQ(total, static_cast<std::uint64_t>(R) * (R - 1) / 2);
    }
  });
  // Every ordered pair exchanged one message per round.
  const auto& pairs = m.pair_messages();
  ASSERT_EQ(pairs.size(), static_cast<std::size_t>(R) * R);
  for (rank_t s = 0; s < R; ++s) {
    for (rank_t d = 0; d < R; ++d) {
      EXPECT_EQ(pairs[static_cast<std::size_t>(s) * R + d],
                s == d ? 0u : static_cast<std::uint64_t>(kRounds));
    }
  }
}

// Concurrent bucket relaxation through the full distributed engine: many
// ranks, many lanes, heavy-vertex load balancing on (so single adjacency
// lists are relaxed cooperatively by all lanes), validated against
// sequential Dijkstra. This is the paper's LB-OPT-D configuration — the
// code path with the most shared-state traffic per bucket.
TEST(RuntimeRaces, DeltaEngineConcurrentRelaxation) {
  RmatConfig cfg;
  cfg.params = RmatParams::rmat2();
  cfg.scale = 9;
  cfg.edge_factor = 12;
  cfg.seed = 77;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(cfg));
  const std::vector<dist_t> ref = dijkstra_distances(g, 0);

  Solver solver(g, {.machine = {.num_ranks = 6, .lanes_per_rank = 4}});
  // A low heavy-degree threshold forces the cooperative (all-lanes) path
  // for every hub the R-MAT skew produces.
  const SsspOptions opts = SsspOptions::lb_opt(/*delta=*/25,
                                               /*heavy_threshold=*/8);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const SsspResult res = solver.solve(0, opts);
    ASSERT_EQ(res.dist.size(), ref.size());
    for (vid_t v = 0; v < ref.size(); ++v) ASSERT_EQ(res.dist[v], ref[v]);
  }
}

// Same engine under the checked protocol: the state machines themselves
// must not introduce races or false positives under full concurrency.
TEST(RuntimeRaces, CheckedProtocolUnderConcurrency) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 10;
  cfg.seed = 5;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(cfg));
  const std::vector<dist_t> ref = dijkstra_distances(g, 0);

  Solver solver(g, {.machine = {.num_ranks = 4,
                                .lanes_per_rank = 3,
                                .checked_exchange = true}});
  const SsspResult res =
      solver.solve(0, SsspOptions::lb_opt(/*delta=*/25, /*heavy_threshold=*/8));
  for (vid_t v = 0; v < ref.size(); ++v) ASSERT_EQ(res.dist[v], ref[v]);
}

// Pooled data path under maximal concurrency: worker lanes emit into their
// own pool shards while other lanes emit theirs, the zero-copy exchange
// moves the buffers, and the lane-parallel apply writes disjoint vertex
// ranges without atomics. Every piece of that contract is a potential race
// TSan must see as clean — and the result must still match Dijkstra.
TEST(RuntimeRaces, PooledDataPathConcurrentLanes) {
  RmatConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 10;
  cfg.seed = 13;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(cfg));
  const std::vector<dist_t> ref = dijkstra_distances(g, 0);

  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 4}});
  SsspOptions opts = SsspOptions::opt(25);
  opts.track_parents = true;  // parents ride the same parallel apply
  ASSERT_EQ(opts.data_path, DataPath::kPooled);
  ASSERT_TRUE(opts.parallel_apply);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const SsspResult res = solver.solve(0, opts);
    for (vid_t v = 0; v < ref.size(); ++v) ASSERT_EQ(res.dist[v], ref[v]);
  }
}

// Buffer-pool recycling across MachineSession job churn: per-rank pools
// outlive individual jobs, so buffers emitted by one job's lanes come back
// as recycled shard capacity in the next job — the handoff chain is
// lane -> rank thread -> board -> peer rank thread -> peer lanes, with the
// job queue's generation handshake in between. 60 back-to-back jobs with
// no idle gap maximize the interleavings of that chain.
TEST(RuntimeRaces, BufferPoolRecyclingUnderSessionChurn) {
  constexpr rank_t R = 4;
  constexpr unsigned kLanes = 3;
  constexpr int kJobs = 60;
  constexpr std::uint32_t kPerShard = 40;
  MachineSession session({.num_ranks = R, .lanes_per_rank = kLanes});
  // One pool per rank, indexed by rank id; each is only ever touched by its
  // owning rank (and that rank's lanes), but lives across jobs.
  std::vector<SendBufferPool<std::uint64_t>> pools(R);
  std::vector<std::uint64_t> received(R, 0);

  for (int job = 0; job < kJobs; ++job) {
    session.run([&, job](RankCtx& ctx) {
      const rank_t r = ctx.rank();
      SendBufferPool<std::uint64_t>& pool = pools[r];
      pool.configure(kLanes, R);
      pool.begin_phase();
      // Lane-parallel emission: each lane fills its own shard row.
      ctx.pool().run_on_lanes([&](unsigned lane) {
        for (rank_t d = 0; d < R; ++d) {
          for (std::uint32_t i = 0; i < kPerShard; ++i) {
            pool.shard(lane, d).push_back(
                (static_cast<std::uint64_t>(job) << 32) | (r * 1000 + i));
          }
        }
      });
      ctx.exchange_pooled(pool, PhaseKind::kShortPhase);
      // Lane-parallel consumption of disjoint batch ranges.
      const auto& in = pool.incoming();
      std::vector<std::uint64_t> lane_sum(ctx.pool().lanes(), 0);
      ctx.pool().parallel_for(
          in.size(), [&](unsigned lane, std::size_t begin, std::size_t end) {
            for (std::size_t b = begin; b < end; ++b) {
              lane_sum[lane] += in[b].size();
            }
          });
      std::uint64_t got = 0;
      for (const std::uint64_t s : lane_sum) got += s;
      ASSERT_EQ(got, static_cast<std::uint64_t>(R) * kLanes * kPerShard);
      received[r] += got;
    });
  }
  for (rank_t r = 0; r < R; ++r) {
    EXPECT_EQ(received[r],
              static_cast<std::uint64_t>(kJobs) * R * kLanes * kPerShard);
  }
}

// Back-to-back full solves with pooled defaults and the checked protocol
// on: each solve constructs the engine pools fresh and recycles buffers
// across its phases, so repeated solves stress construction/teardown of
// the pooled path under the protocol state machines.
TEST(RuntimeRaces, PooledSolvesBackToBackChecked) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = 19;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(cfg));
  const std::vector<dist_t> ref = dijkstra_distances(g, 0);

  Solver solver(g, {.machine = {.num_ranks = 3,
                                .lanes_per_rank = 3,
                                .checked_exchange = true}});
  for (int repeat = 0; repeat < 4; ++repeat) {
    const SsspResult res = solver.solve(0, SsspOptions::opt(25));
    for (vid_t v = 0; v < ref.size(); ++v) ASSERT_EQ(res.dist[v], ref[v]);
  }
}

// The observability snapshot path under maximal concurrency: client
// threads submit queries (bumping counters and latency histograms from
// both the submitter and dispatcher sides) while an observer thread
// continuously reads stats(), snapshots the metrics registry and exports
// the trace — the exact pattern serve_cli's periodic metrics snapshots
// exercise. TSan must see every read as clean; functionally, the final
// snapshot must balance (completed == submitted, hits + misses ==
// completed) so no increment was torn or lost.
TEST(RuntimeRaces, ServeMetricsAndTraceSnapshotsUnderLoad) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = 23;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(cfg));

  MetricsRegistry registry;
  TraceRecorder recorder;
  ServeConfig serve;
  serve.machine = {.num_ranks = 2, .lanes_per_rank = 2};
  serve.max_batch = 4;
  serve.cache_capacity = 16;
  serve.metrics = &registry;
  serve.trace = &recorder;
  QueryEngine engine(g, serve);

  constexpr int kClients = 3;
  constexpr int kPerClient = 20;
  std::atomic<bool> done{false};
  std::thread observer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const ServeStats stats = engine.stats();
      ASSERT_LE(stats.completed, stats.submitted);
      const MetricsSnapshot snap = registry.snapshot();
      for (const auto& h : snap.histograms) ASSERT_GE(h.max, 0.0);
      std::ostringstream sink;
      write_chrome_trace(sink, recorder);
    }
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const SsspOptions opts = SsspOptions::opt(25);
      std::vector<std::future<QueryResult>> futures;
      for (int i = 0; i < kPerClient; ++i) {
        // A small root domain so cache hits and misses interleave.
        futures.push_back(engine.submit((c * 7 + i) % 8, opts));
      }
      for (auto& f : futures) {
        const QueryResult r = f.get();
        ASSERT_NE(r.answer, nullptr);
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true);
  observer.join();

  const MetricsSnapshot snap = registry.snapshot();
  std::uint64_t submitted = 0, completed = 0, hits = 0, misses = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "serve.submitted") submitted = c.value;
    if (c.name == "serve.completed") completed = c.value;
    if (c.name == "serve.cache_hits") hits = c.value;
    if (c.name == "serve.cache_misses") misses = c.value;
  }
  EXPECT_EQ(submitted, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(completed, submitted);
  EXPECT_EQ(hits + misses, completed);
  std::uint64_t latency_count = 0;
  for (const auto& h : snap.histograms) {
    if (h.name == "serve.latency_s") latency_count = h.count;
  }
  EXPECT_EQ(latency_count, completed);
  EXPECT_EQ(recorder.total_dropped(), 0u);
}

}  // namespace
}  // namespace parsssp
