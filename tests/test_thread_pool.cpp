#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace parsssp {
namespace {

TEST(ThreadPool, SingleLaneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1u);
  int calls = 0;
  pool.run_on_lanes([&](unsigned lane) {
    EXPECT_EQ(lane, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ZeroLanesClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.lanes(), 1u);
}

TEST(ThreadPool, RunOnLanesHitsEveryLane) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_lanes([&](unsigned lane) { hits[lane]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(100);
  pool.parallel_for(100, [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i]++;
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](unsigned, std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, end);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 4);  // every lane is invoked with an empty chunk
}

TEST(ThreadPool, ParallelForSmallRangeManyLanes) {
  ThreadPool pool(8);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(3, [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i + 1;
  });
  EXPECT_EQ(sum.load(), 1u + 2 + 3);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int j = 0; j < 100; ++j) {
    pool.run_on_lanes([&](unsigned) { ++total; });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, LanesSeeDisjointChunks) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(4);
  pool.parallel_for(40, [&](unsigned lane, std::size_t b, std::size_t e) {
    ranges[lane] = {b, e};
  });
  std::size_t total = 0;
  for (unsigned l = 0; l < 4; ++l) {
    total += ranges[l].second - ranges[l].first;
    for (unsigned m = l + 1; m < 4; ++m) {
      const bool disjoint = ranges[l].second <= ranges[m].first ||
                            ranges[m].second <= ranges[l].first;
      EXPECT_TRUE(disjoint);
    }
  }
  EXPECT_EQ(total, 40u);
}

}  // namespace
}  // namespace parsssp
