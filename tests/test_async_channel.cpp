// AsyncChannel (runtime/async_channel.hpp): the barrier-free transport of
// the asynchronous data path. Single-thread tests pin the inbox semantics
// (ordering, empty-batch drop, token slot, done broadcast, wait); the
// multi-thread stress runs a full ring of sender/receiver threads with the
// quiescence detector on top and is written for the TSan lane of the
// sanitizer matrix (scripts/check.sh), though its assertions also check
// functional correctness without TSan.
#include "runtime/async_channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/quiescence.hpp"

namespace parsssp {
namespace {

using namespace std::chrono_literals;
using Channel = AsyncChannel<std::uint32_t>;

TEST(AsyncChannel, DrainPreservesArrivalOrderAndTagsSources) {
  Channel ch(3);
  ch.post(1, 0, {10, 11});
  ch.post(2, 0, {20});
  ch.post(1, 0, {12});

  std::vector<Channel::Batch> got;
  EXPECT_EQ(ch.drain(0, got), 4u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].source, 1u);
  EXPECT_EQ(got[0].msgs, (std::vector<std::uint32_t>{10, 11}));
  EXPECT_EQ(got[1].source, 2u);
  EXPECT_EQ(got[2].msgs, (std::vector<std::uint32_t>{12}));

  // Drain appends; a second drain of an empty inbox takes nothing.
  EXPECT_EQ(ch.drain(0, got), 0u);
  EXPECT_EQ(got.size(), 3u);
}

TEST(AsyncChannel, EmptyBatchesAreDropped) {
  Channel ch(2);
  ch.post(0, 1, {});
  std::vector<Channel::Batch> got;
  EXPECT_EQ(ch.drain(1, got), 0u);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(ch.pending_messages(), 0u);
}

TEST(AsyncChannel, InboxesAreIndependent) {
  Channel ch(3);
  ch.post(0, 1, {7});
  ch.post(0, 2, {8, 9});
  EXPECT_EQ(ch.pending_messages(), 3u);
  std::vector<Channel::Batch> got;
  EXPECT_EQ(ch.drain(1, got), 1u);
  EXPECT_EQ(ch.pending_messages(), 2u);
  got.clear();
  EXPECT_EQ(ch.drain(2, got), 2u);
  EXPECT_EQ(ch.pending_messages(), 0u);
}

TEST(AsyncChannel, TokenSlotParksExactlyOne) {
  Channel ch(2);
  QuiescenceToken t;
  EXPECT_FALSE(ch.take_token(1, t));

  ch.post_token(1, QuiescenceToken{5, true, 2});
  ASSERT_TRUE(ch.take_token(1, t));
  EXPECT_EQ(t.balance, 5);
  EXPECT_TRUE(t.black);
  EXPECT_EQ(t.round, 2u);
  EXPECT_FALSE(ch.take_token(1, t));  // the slot emptied

  // At most one token circulates; a re-post simply reoccupies the slot.
  ch.post_token(1, QuiescenceToken{-3, false, 4});
  ASSERT_TRUE(ch.take_token(1, t));
  EXPECT_EQ(t.balance, -3);
}

TEST(AsyncChannel, DoneBroadcastReachesEveryRank) {
  Channel ch(4);
  for (rank_t r = 0; r < 4; ++r) EXPECT_FALSE(ch.done(r));
  ch.announce_done();
  for (rank_t r = 0; r < 4; ++r) EXPECT_TRUE(ch.done(r));
  // wait() returns immediately once done, whatever the timeout.
  EXPECT_TRUE(ch.wait(2, 10s));
}

TEST(AsyncChannel, WaitTimesOutOnAnEmptyInbox) {
  Channel ch(2);
  EXPECT_FALSE(ch.wait(0, 1ms));
}

TEST(AsyncChannel, WaitReturnsImmediatelyWhenWorkIsAlreadyPending) {
  Channel ch(2);
  ch.post(0, 1, {1});
  EXPECT_TRUE(ch.wait(1, 10s));
  Channel ch2(2);
  ch2.post_token(1, QuiescenceToken{});
  EXPECT_TRUE(ch2.wait(1, 10s));
}

TEST(AsyncChannel, WaitWakesOnCrossThreadPost) {
  Channel ch(2);
  std::thread poster([&ch] {
    std::this_thread::sleep_for(5ms);
    ch.post(0, 1, {42});
  });
  // Generous timeout: the test only hangs if the notify is lost.
  EXPECT_TRUE(ch.wait(1, 10s));
  poster.join();
  std::vector<Channel::Batch> got;
  EXPECT_EQ(ch.drain(1, got), 1u);
}

TEST(AsyncChannel, DrainedVectorsKeepTheirPayloadAfterRecycling) {
  // The engine retires drained batches into its SendBufferPool; the
  // channel's contract is move-in/move-out with no aliasing of payloads.
  Channel ch(2);
  std::vector<std::uint32_t> payload = {1, 2, 3};
  ch.post(0, 1, std::move(payload));
  std::vector<Channel::Batch> got;
  ch.drain(1, got);
  ASSERT_EQ(got.size(), 1u);
  std::vector<std::uint32_t> recycled = std::move(got[0].msgs);
  EXPECT_EQ(recycled, (std::vector<std::uint32_t>{1, 2, 3}));
  // Reuse the recycled capacity for a fresh send.
  recycled.clear();
  recycled.push_back(9);
  ch.post(1, 0, std::move(recycled));
  got.clear();
  EXPECT_EQ(ch.drain(0, got), 1u);
  EXPECT_EQ(got[0].msgs, (std::vector<std::uint32_t>{9}));
}

// Full-protocol stress: N rank threads relay messages around (each message
// received with a positive TTL is decremented and forwarded to the next
// rank), the quiescence detector rides the channel as the engine drives
// it, and rank 0's certification broadcasts done. Checks: every send is
// received exactly once (conservation), nothing is pending at shutdown,
// and no thread hangs. Run under TSan this exercises every channel method
// concurrently.
TEST(AsyncChannel, RingRelayStressTerminatesWithNothingInFlight) {
  constexpr rank_t kN = 4;
  constexpr std::uint32_t kSeeds = 64;  // initial messages, TTL each
  constexpr std::uint32_t kTtl = 8;
  Channel ch(kN);
  std::atomic<std::uint64_t> sent{0}, received{0};

  auto rank_main = [&](rank_t self) {
    QuiescenceRank detector(self, kN);
    std::vector<Channel::Batch> arrived;
    std::vector<std::uint32_t> out;
    if (self == 0) {
      for (std::uint32_t i = 0; i < kSeeds; ++i) out.push_back(kTtl);
      detector.on_send(out.size());
      sent.fetch_add(out.size(), std::memory_order_relaxed);
      ch.post(self, 1, std::move(out));
      out = {};
    }
    while (!ch.done(self)) {
      arrived.clear();
      const std::size_t got = ch.drain(self, arrived);
      if (got != 0) {
        detector.on_receive(got);
        received.fetch_add(got, std::memory_order_relaxed);
        out.clear();
        for (const Channel::Batch& b : arrived) {
          for (const std::uint32_t ttl : b.msgs) {
            if (ttl > 0) out.push_back(ttl - 1);
          }
        }
        if (!out.empty()) {
          const rank_t next = static_cast<rank_t>((self + 1) % kN);
          detector.on_send(out.size());
          sent.fetch_add(out.size(), std::memory_order_relaxed);
          ch.post(self, next, std::move(out));
          out = {};
        }
        continue;  // re-check the inbox before touching the token
      }
      QuiescenceToken token;
      if (ch.take_token(self, token)) detector.receive_token(token);
      const auto action = detector.poll(true);
      if (action.kind == QuiescenceRank::ActionKind::kTerminate) {
        ch.announce_done();
        break;
      }
      if (action.kind == QuiescenceRank::ActionKind::kForward) {
        ch.post_token(action.dest, action.token);
        continue;
      }
      ch.wait(self, 100us);
    }
  };

  std::vector<std::thread> threads;
  for (rank_t r = 0; r < kN; ++r) threads.emplace_back(rank_main, r);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(sent.load(), received.load());
  // TTL relay: each seed spawns exactly kTtl + 1 deliveries.
  EXPECT_EQ(received.load(),
            static_cast<std::uint64_t>(kSeeds) * (kTtl + 1));
  EXPECT_EQ(ch.pending_messages(), 0u);
}

}  // namespace
}  // namespace parsssp
