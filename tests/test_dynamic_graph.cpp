// DynamicGraph: batch apply semantics (atomicity, intra-batch sequencing),
// version monotonicity, delta-overlay reads, and compaction as a logical
// no-op.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "update/dynamic_graph.hpp"

namespace parsssp {
namespace {

CsrGraph path_graph() {
  // 0 -1- 1 -2- 2 -3- 3, plus chord 0-3 (weight 10).
  EdgeList edges(4);
  edges.add_edge(0, 1, 1);
  edges.add_edge(1, 2, 2);
  edges.add_edge(2, 3, 3);
  edges.add_edge(0, 3, 10);
  edges.canonicalize();
  return CsrGraph::from_edges(edges);
}

/// The effective undirected edge set as a sorted map {u,v}->w (u < v).
std::map<std::pair<vid_t, vid_t>, weight_t> edge_map(const DynamicGraph& g) {
  std::map<std::pair<vid_t, vid_t>, weight_t> out;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    g.for_each_arc(v, [&](const Arc& a) {
      if (v < a.to) out[{v, a.to}] = a.w;
    });
  }
  return out;
}

TEST(DynamicGraph, ConstructionRejectsSelfLoopsAndStripHelperDropsThem) {
  EdgeList edges(3);
  edges.add_edge(0, 1, 1);
  edges.add_edge(1, 1, 5);
  edges.canonicalize();
  const CsrGraph looped = CsrGraph::from_edges(edges);
  EXPECT_THROW(DynamicGraph{looped}, std::invalid_argument);

  const CsrGraph clean = strip_self_loops(looped);
  DynamicGraph g(clean);
  EXPECT_EQ(g.num_undirected_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(DynamicGraph, InsertDeleteReweightAcrossBatches) {
  DynamicGraph g(path_graph());
  EXPECT_EQ(g.version(), 0u);
  EXPECT_EQ(g.num_undirected_edges(), 4u);

  const AppliedBatch b1 = g.apply(EdgeBatch{}
                                      .insert_edge(1, 3, 7)
                                      .delete_edge(0, 3)
                                      .update_weight(0, 1, 4));
  EXPECT_EQ(b1.version, 1u);
  EXPECT_EQ(g.version(), 1u);
  EXPECT_EQ(b1.ops.size(), 3u);
  EXPECT_EQ(b1.ops[2].w_old, 1u);  // reweight records the prior weight
  EXPECT_EQ(g.num_undirected_edges(), 4u);
  EXPECT_EQ(g.find_edge(1, 3), weight_t{7});
  EXPECT_EQ(g.find_edge(3, 1), weight_t{7});  // symmetric
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.find_edge(0, 1), weight_t{4});
  EXPECT_EQ(g.degree(3), 2u);  // lost 0, gained 1

  // touched = affected endpoints, sorted and deduped.
  EXPECT_EQ(b1.touched, (std::vector<vid_t>{0, 1, 3}));

  const AppliedBatch b2 = g.apply(EdgeBatch{}.delete_edge(1, 3));
  EXPECT_EQ(b2.version, 2u);
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_EQ(g.num_undirected_edges(), 3u);

  const auto& c = g.counters();
  EXPECT_EQ(c.applied_batches, 2u);
  EXPECT_EQ(c.inserts, 1u);
  EXPECT_EQ(c.deletes, 2u);
  EXPECT_EQ(c.reweights, 1u);
}

TEST(DynamicGraph, InvalidBatchThrowsAndLeavesEverythingUntouched) {
  DynamicGraph g(path_graph());
  const auto before = edge_map(g);

  // Each batch starts with a valid op; the later invalid one must roll the
  // whole batch back (strong guarantee).
  const EdgeBatch bad[] = {
      EdgeBatch{}.insert_edge(1, 3, 7).insert_edge(0, 1, 5),  // present
      EdgeBatch{}.delete_edge(0, 1).delete_edge(1, 3),        // absent
      EdgeBatch{}.update_weight(0, 1, 9).update_weight(1, 3, 2),  // absent
      EdgeBatch{}.insert_edge(1, 3, 0),                       // zero weight
      EdgeBatch{}.insert_edge(2, 2, 1),                       // self loop
      EdgeBatch{}.insert_edge(0, 99, 1),                      // out of range
      // Intra-batch collision: the eighth op re-deletes what the batch
      // itself already deleted.
      EdgeBatch{}.delete_edge(0, 1).delete_edge(0, 1),
  };
  for (const EdgeBatch& batch : bad) {
    EXPECT_THROW(g.apply(batch), std::invalid_argument);
    EXPECT_EQ(g.version(), 0u);
    EXPECT_EQ(edge_map(g), before);
    EXPECT_EQ(g.counters().applied_batches, 0u);
  }
}

TEST(DynamicGraph, IntraBatchSequencingValidatesAgainstEarlierOps) {
  DynamicGraph g(path_graph());
  // delete then re-insert the same pair in one batch: legal, net reweight.
  g.apply(EdgeBatch{}.delete_edge(0, 1).insert_edge(0, 1, 9));
  EXPECT_EQ(g.find_edge(0, 1), weight_t{9});
  EXPECT_EQ(g.num_undirected_edges(), 4u);

  // insert then delete: legal, net no-op on the edge set.
  g.apply(EdgeBatch{}.insert_edge(1, 3, 2).delete_edge(1, 3));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_EQ(g.num_undirected_edges(), 4u);

  // insert then reweight the new edge: legal.
  g.apply(EdgeBatch{}.insert_edge(1, 3, 2).update_weight(1, 3, 8));
  EXPECT_EQ(g.find_edge(1, 3), weight_t{8});
  EXPECT_EQ(g.version(), 3u);
}

TEST(DynamicGraph, RandomOpsMatchAMapMirrorAndSurviveCompaction) {
  std::mt19937_64 rng(42);
  const vid_t n = 24;
  EdgeList edges(n);
  for (vid_t v = 1; v < n; ++v) edges.add_edge(v - 1, v, 1 + v % 7);
  edges.canonicalize();
  DynamicGraph g(CsrGraph::from_edges(edges),
                 DynamicGraphConfig{.compact_ratio = 0.25, .compact_min = 16});

  std::map<std::pair<vid_t, vid_t>, weight_t> mirror = edge_map(g);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  bool compacted_once = false;
  for (int round = 0; round < 60; ++round) {
    EdgeBatch batch;
    std::map<std::pair<vid_t, vid_t>, weight_t> next = mirror;
    for (int op = 0; op < 3; ++op) {
      vid_t u = pick(rng), v = pick(rng);
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      const auto it = next.find({u, v});
      const weight_t w = static_cast<weight_t>(1 + rng() % 50);
      if (it == next.end()) {
        batch.insert_edge(u, v, w);
        next[{u, v}] = w;
      } else if (rng() % 2 == 0) {
        batch.delete_edge(u, v);
        next.erase(it);
      } else {
        batch.update_weight(u, v, w);
        it->second = w;
      }
    }
    if (batch.size() == 0) continue;
    const AppliedBatch applied = g.apply(batch);
    mirror = std::move(next);
    compacted_once |= applied.compacted;

    ASSERT_EQ(edge_map(g), mirror) << "round " << round;
    ASSERT_EQ(g.num_undirected_edges(), mirror.size());
  }
  EXPECT_TRUE(compacted_once) << "auto-compaction threshold never crossed";
  EXPECT_GE(g.counters().compactions, 1u);

  // Explicit compact: logical no-op, version unchanged, delta gone.
  const auto version = g.version();
  g.compact();
  EXPECT_EQ(g.version(), version);
  EXPECT_EQ(g.delta_entries(), 0u);
  EXPECT_EQ(edge_map(g), mirror);

  // materialize() round-trips the same edge set.
  const DynamicGraph fresh(g.materialize());
  EXPECT_EQ(edge_map(fresh), mirror);
}

TEST(DynamicGraph, MaxWeightIsAnUpperBoundAndExactAfterCompact) {
  DynamicGraph g(path_graph());
  EXPECT_EQ(g.max_weight(), 10u);
  g.apply(EdgeBatch{}.insert_edge(1, 3, 200));
  EXPECT_EQ(g.max_weight(), 200u);
  g.apply(EdgeBatch{}.delete_edge(1, 3));
  EXPECT_GE(g.max_weight(), 10u);  // bound may lag after a delete...
  g.compact();
  EXPECT_EQ(g.max_weight(), 10u);  // ...and snaps back at compaction
}

}  // namespace
}  // namespace parsssp
