// The observability layer in isolation: trace lanes (ring semantics, drop
// accounting, concurrent snapshots), the Chrome-trace exporter's shape,
// and the metrics registry (counters, gauges, log-scale histograms whose
// percentiles are cross-checked against exact nearest-rank order
// statistics).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/workload.hpp"

namespace parsssp {
namespace {

TEST(TraceLane, RecordsSpansAndCountsDropsInsteadOfWrapping) {
  TraceRecorder rec(/*capacity_per_lane=*/4);
  TraceLane& lane = rec.thread_lane("test");
  for (std::uint64_t i = 0; i < 7; ++i) {
    lane.record(SpanCat::kShortPhase, static_cast<std::int64_t>(10 * i), 5, i);
  }
  const auto spans = lane.spans();
  ASSERT_EQ(spans.size(), 4u);  // ring is full, history preserved
  EXPECT_EQ(lane.dropped(), 3u);
  EXPECT_EQ(rec.total_dropped(), 3u);
  for (std::uint64_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].arg, i);  // oldest spans kept, newest dropped
    EXPECT_EQ(spans[i].cat, SpanCat::kShortPhase);
  }

  rec.clear();
  EXPECT_TRUE(rec.thread_lane("test").spans().empty());
  EXPECT_EQ(rec.total_dropped(), 0u);
}

TEST(TraceLane, ThreadLaneIsStablePerThreadAndFirstNameWins) {
  TraceRecorder rec;
  TraceLane& a = rec.thread_lane("rank0");
  TraceLane& b = rec.thread_lane("other-hint");
  EXPECT_EQ(&a, &b);  // same thread, same lane
  EXPECT_EQ(a.name(), "rank0");

  TraceLane* other = nullptr;
  std::thread t([&] { other = &rec.thread_lane("rank1"); });
  t.join();
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other, &a);
  ASSERT_EQ(rec.snapshot().size(), 2u);
}

TEST(TraceLane, NullLaneScopedSpanIsANoOp) {
  // The untraced hot path: must not crash, read clocks, or record.
  ScopedSpan span(nullptr, SpanCat::kSolve);
  double acc = 0;
  { TimedSection sw(acc, nullptr, SpanCat::kBucketScan); }
  EXPECT_GE(acc, 0.0);  // accumulator still fed with tracing off
}

TEST(TraceLane, SnapshotIsSafeConcurrentWithTheWriter) {
  TraceRecorder rec(1u << 12);
  TraceLane* lane = nullptr;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    lane = &rec.thread_lane("writer");
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      lane->record(SpanCat::kExchange, static_cast<std::int64_t>(i), 1, i);
      ++i;
    }
  });
  for (int r = 0; r < 200; ++r) {
    for (const auto& view : rec.snapshot()) {
      // Prefix consistency: the published spans are fully written.
      for (std::uint64_t i = 0; i < view.spans.size(); ++i) {
        ASSERT_EQ(view.spans[i].arg, i);
      }
    }
  }
  stop.store(true);
  writer.join();
}

TEST(ChromeTrace, ExportHasTheDocumentedShape) {
  TraceRecorder rec;
  TraceLane& lane = rec.thread_lane("rank0");
  lane.record(SpanCat::kSolve, 0, 5000, 7);
  lane.record(SpanCat::kBucketScan, 100, 200);

  std::ostringstream out;
  write_chrome_trace(out, rec);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bucket_scan\""), std::string::npos);
  EXPECT_NE(json.find("rank0"), std::string::npos);
  // kNoSpanArg spans must not leak the sentinel into the JSON args.
  EXPECT_EQ(json.find("18446744073709551615"), std::string::npos);
}

TEST(Metrics, CountersAndGaugesRoundTrip) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&c, &reg.counter("requests"));  // same name, same instrument

  Gauge& g = reg.gauge("depth");
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "requests");
  EXPECT_EQ(snap.counters[0].value, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 3.5);
}

TEST(Metrics, SameNameDifferentKindThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
}

TEST(Metrics, HistogramTracksCountSumMaxExactly) {
  Histogram h;
  h.record(1e-3);
  h.record(2e-3);
  h.record(4e-3);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum, 7e-3, 1e-12);
  EXPECT_NEAR(snap.mean(), 7e-3 / 3, 1e-12);
  EXPECT_EQ(snap.max, 4e-3);
  EXPECT_EQ(Histogram().snapshot().percentile(0.5), 0.0);  // empty
}

TEST(Metrics, HistogramClampsOutOfRangeValues) {
  Histogram::Config cfg;
  cfg.base = 1.0;
  cfg.growth = 2.0;
  cfg.buckets = 4;  // [1,2) [2,4) [4,8) [8,16)
  Histogram h(cfg);
  h.record(0.125);   // below base -> bucket 0
  h.record(1e9);     // beyond top -> last bucket
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets.front(), 1u);
  EXPECT_EQ(snap.buckets.back(), 1u);
}

// The cross-check the serving reports rely on: histogram percentiles must
// agree with the exact nearest-rank order statistics from
// percentile_stats() to within one bucket growth factor.
TEST(Metrics, HistogramPercentilesMatchExactWithinOneGrowthFactor) {
  Histogram h;
  std::vector<double> samples;
  double v = 1.7e-4;
  for (int i = 0; i < 500; ++i) {
    // Deterministic skewed spread over ~3 decades (hash-style scramble).
    v = 1e-4 + std::fmod(v * 9301.0 + 4.9297e-2, 1e-1);
    samples.push_back(v);
    h.record(v);
  }
  const LatencyStats exact = percentile_stats(samples);
  const auto snap = h.snapshot();
  const double tol = snap.config.growth;  // one bucket of relative error
  for (const auto& [p, ref] : {std::pair{0.50, exact.p50},
                               std::pair{0.95, exact.p95},
                               std::pair{0.99, exact.p99}}) {
    const double est = snap.percentile(p);
    EXPECT_LE(est, ref * tol) << "p" << 100 * p;
    EXPECT_GE(est, ref / tol) << "p" << 100 * p;
  }
}

TEST(Metrics, SnapshotIsSafeConcurrentWithRecording) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ops");
  Histogram& h = reg.histogram("lat");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        h.record(1e-3);
      }
    });
  }
  for (int r = 0; r < 500; ++r) {
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    ASSERT_EQ(snap.histograms.size(), 1u);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  const MetricsSnapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counters[0].value, c.value());
  EXPECT_EQ(final_snap.histograms[0].count, h.snapshot().count);
}

}  // namespace
}  // namespace parsssp
