// The distributed validator must accept every correct result and reject
// targeted corruptions, agreeing with the sequential oracle's verdicts.
#include <gtest/gtest.h>

#include "core/dist_validate.hpp"
#include "core/solver.hpp"
#include "graph/builders.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"

namespace parsssp {
namespace {

struct Fixture {
  Fixture() {
    RmatConfig cfg;
    cfg.scale = 9;
    cfg.edge_factor = 8;
    g = CsrGraph::from_edges(generate_rmat(cfg));
    root = sample_roots(g, 1, 1).at(0);
    Solver solver(g, {.machine = {.num_ranks = 4}});
    SsspOptions o = SsspOptions::opt(25);
    o.track_parents = true;
    result = solver.solve(root, o);
  }
  CsrGraph g;
  vid_t root = 0;
  SsspResult result;
  Machine machine{{.num_ranks = 4}};
  BlockPartition part() const {
    return BlockPartition(g.num_vertices(), 4);
  }
};

TEST(DistValidate, AcceptsCorrectResult) {
  Fixture f;
  const auto rep = validate_distributed(f.g, f.machine, f.part(), f.root,
                                        f.result.dist, f.result.parent);
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(DistValidate, AcceptsDistancesWithoutParents) {
  Fixture f;
  const auto rep = validate_distributed(f.g, f.machine, f.part(), f.root,
                                        f.result.dist);
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(DistValidate, RejectsBadRoot) {
  Fixture f;
  auto dist = f.result.dist;
  dist[f.root] = 1;
  const auto rep =
      validate_distributed(f.g, f.machine, f.part(), f.root, dist);
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.bad_root, 1u);
}

TEST(DistValidate, RejectsInflatedDistance) {
  Fixture f;
  auto dist = f.result.dist;
  // Raise one reached non-root vertex: some incoming arc now undercuts it.
  for (vid_t v = 0; v < f.g.num_vertices(); ++v) {
    if (v != f.root && dist[v] != kInfDist && f.g.degree(v) > 0) {
      dist[v] += 1000;
      break;
    }
  }
  const auto rep =
      validate_distributed(f.g, f.machine, f.part(), f.root, dist);
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.violated_edges, 1u);
}

TEST(DistValidate, RejectsDeflatedDistanceViaParents) {
  Fixture f;
  auto dist = f.result.dist;
  // Lower a vertex below its true distance: no parent edge can certify it
  // (and its own outgoing arcs may now undercut neighbours).
  for (vid_t v = 0; v < f.g.num_vertices(); ++v) {
    if (v != f.root && dist[v] != kInfDist && dist[v] > 2) {
      dist[v] -= 1;
      break;
    }
  }
  const auto rep = validate_distributed(f.g, f.machine, f.part(), f.root,
                                        dist, f.result.parent);
  EXPECT_FALSE(rep.ok);
}

TEST(DistValidate, RejectsGhostParentOnUnreached) {
  Fixture f;
  auto parent = f.result.parent;
  bool corrupted = false;
  for (vid_t v = 0; v < f.g.num_vertices(); ++v) {
    if (f.result.dist[v] == kInfDist) {
      parent[v] = f.root;
      corrupted = true;
      break;
    }
  }
  if (!corrupted) GTEST_SKIP() << "graph fully reachable from this root";
  const auto rep = validate_distributed(f.g, f.machine, f.part(), f.root,
                                        f.result.dist, parent);
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.parent_violations, 1u);
}

TEST(DistValidate, RejectsNonAdjacentParent) {
  Fixture f;
  auto parent = f.result.parent;
  for (vid_t v = 0; v < f.g.num_vertices(); ++v) {
    if (v != f.root && f.result.dist[v] != kInfDist) {
      parent[v] = v;  // self is never a valid tree parent
      break;
    }
  }
  const auto rep = validate_distributed(f.g, f.machine, f.part(), f.root,
                                        f.result.dist, parent);
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.parent_violations, 1u);
}

TEST(DistValidate, RankCountInvariant) {
  Fixture f;
  for (const rank_t ranks : {1u, 2u, 8u}) {
    Machine m({.num_ranks = ranks});
    const BlockPartition part(f.g.num_vertices(), ranks);
    const auto rep = validate_distributed(f.g, m, part, f.root,
                                          f.result.dist, f.result.parent);
    EXPECT_TRUE(rep.ok) << "ranks=" << ranks << ": " << rep.message;
  }
}

TEST(DistValidate, GridGraphEndToEnd) {
  const auto g = CsrGraph::from_edges(make_grid(16, [](vid_t a, vid_t b) {
    return static_cast<weight_t>(1 + (a * 31 + b) % 50);
  }));
  Solver solver(g, {.machine = {.num_ranks = 3}});
  SsspOptions o = SsspOptions::opt(10);
  o.track_parents = true;
  const auto r = solver.solve(0, o);
  Machine m({.num_ranks = 3});
  const BlockPartition part(g.num_vertices(), 3);
  const auto rep =
      validate_distributed(g, m, part, 0, r.dist, r.parent);
  EXPECT_TRUE(rep.ok) << rep.message;
}

}  // namespace
}  // namespace parsssp
