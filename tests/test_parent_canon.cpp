// Canonical parent trees: min-id tie-breaking, option independence, and
// equality between the solver's canonical mode and a post-hoc rewrite.
#include <gtest/gtest.h>

#include <vector>

#include "core/parent_canon.hpp"
#include "core/solver.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph diamond() {
  // Two equal-cost two-hop paths 0->1->3 and 0->2->3: parent of 3 is
  // ambiguous (1 or 2) until canonicalized.
  EdgeList edges(5);
  edges.add_edge(0, 1, 1);
  edges.add_edge(0, 2, 1);
  edges.add_edge(1, 3, 1);
  edges.add_edge(2, 3, 1);
  edges.canonicalize();
  return CsrGraph::from_edges(edges);  // vertex 4 stays unreachable
}

TEST(ParentCanon, PicksTheMinimumTightPredecessor) {
  const CsrGraph g = diamond();
  const std::vector<dist_t> dist = dijkstra(g, 0).dist;
  std::vector<vid_t> parent = {0, 0, 0, 2, kInvalidVid};  // 3's parent: the
                                                          // non-canonical tie
  canonicalize_parents(g, 0, dist, parent);
  EXPECT_EQ(parent[0], 0u);  // root self-parents
  EXPECT_EQ(parent[1], 0u);
  EXPECT_EQ(parent[2], 0u);
  EXPECT_EQ(parent[3], 1u);  // min id among {1, 2}
  EXPECT_EQ(parent[4], kInvalidVid);  // unreachable

  // The per-vertex form agrees with the whole-graph rewrite.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t canon = canonical_parent_of(
        v, 0, dist, [&](auto&& fn) {
          for (const Arc& a : g.neighbors(v)) fn(a);
        });
    EXPECT_EQ(canon, parent[v]) << "v=" << v;
  }
}

TEST(ParentCanon, SolverCanonicalModeIsOptionIndependent) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = 3;
  const CsrGraph g = CsrGraph::from_edges(generate_rmat(cfg));
  SsspOptions a = SsspOptions::del(20);
  a.track_parents = true;
  a.canonical_parents = true;
  SsspOptions b = SsspOptions::opt(40);
  b.track_parents = true;
  b.canonical_parents = true;

  std::vector<vid_t> first;
  for (const rank_t ranks : {rank_t{1}, rank_t{4}}) {
    Solver s1(g, {.machine = {.num_ranks = ranks}});
    Solver s2(g, {.machine = {.num_ranks = ranks}});
    const SsspResult ra = s1.solve(0, a);
    const SsspResult rb = s2.solve(0, b);
    ASSERT_EQ(ra.dist, rb.dist);
    ASSERT_EQ(ra.parent, rb.parent) << "ranks=" << ranks;
    if (first.empty()) {
      first = ra.parent;
    } else {
      EXPECT_EQ(ra.parent, first);  // rank count must not matter either
    }
  }

  // And the mode matches canonicalizing a non-canonical run after the fact.
  Solver plain_solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions plain = SsspOptions::del(20);
  plain.track_parents = true;
  SsspResult r = plain_solver.solve(0, plain);
  canonicalize_parents(g, 0, r.dist, r.parent);
  EXPECT_EQ(r.parent, first);
}

}  // namespace
}  // namespace parsssp
