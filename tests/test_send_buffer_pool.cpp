// Unit tests for the pooled relax data path's building blocks: the
// SendBufferPool (capacity recycling, canonical merge order), the
// SenderReducer (running-minimum no-op elimination), and the zero-copy
// segment exchange through ExchangeBoard and RankCtx.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/protocol_check.hpp"
#include "runtime/send_buffer_pool.hpp"

namespace parsssp {
namespace {

struct Msg {
  std::uint32_t v;
  std::uint32_t nd;
  bool operator==(const Msg&) const = default;
};

TEST(SendBufferPool, ShardsKeepCapacityAcrossPhases) {
  SendBufferPool<Msg> pool;
  pool.configure(2, 2);
  for (int i = 0; i < 100; ++i) pool.shard(1, 0).push_back({0, 0});
  const std::size_t cap = pool.shard(1, 0).capacity();
  EXPECT_GE(cap, 100u);
  pool.begin_phase();
  EXPECT_EQ(pool.shard(1, 0).size(), 0u);
  EXPECT_EQ(pool.shard(1, 0).capacity(), cap);  // no churn
}

TEST(SendBufferPool, IncomingBuffersRecycleIntoEmptyShards) {
  SendBufferPool<Msg> pool;
  pool.configure(1, 2);
  pool.shard(0, 0).reserve(8);  // keep shard 0 seated: it is not re-seated
  // A shard that was moved out by an exchange has zero capacity...
  std::vector<Msg> shipped = std::move(pool.shard(0, 1));
  EXPECT_EQ(pool.shard(0, 1).capacity(), 0u);
  // ...and a received buffer, once the next phase begins, re-seats it.
  std::vector<Msg> received;
  received.reserve(64);
  pool.push_incoming(1, std::move(received));
  pool.begin_phase();
  EXPECT_GE(pool.shard(0, 1).capacity(), 64u);
  EXPECT_TRUE(pool.incoming().empty());
  EXPECT_TRUE(pool.incoming_sources().empty());
  (void)shipped;
}

TEST(SendBufferPool, MergedConcatenatesLaneShardsInLaneOrder) {
  SendBufferPool<Msg> pool;
  pool.configure(3, 2);
  pool.shard(0, 1).push_back({10, 0});
  pool.shard(1, 1).push_back({11, 0});
  pool.shard(2, 1).push_back({12, 0});
  pool.shard(1, 0).push_back({20, 0});
  const auto merged = pool.merged();
  ASSERT_EQ(merged.size(), 2u);
  ASSERT_EQ(merged[1].size(), 3u);
  EXPECT_EQ(merged[1][0].v, 10u);
  EXPECT_EQ(merged[1][1].v, 11u);
  EXPECT_EQ(merged[1][2].v, 12u);
  ASSERT_EQ(merged[0].size(), 1u);
  EXPECT_EQ(merged[0][0].v, 20u);
}

TEST(SendBufferPool, ReleaseDropsAllCapacity) {
  SendBufferPool<Msg> pool;
  pool.configure(1, 1);
  pool.shard(0, 0).reserve(32);
  std::vector<Msg> buf;
  buf.reserve(16);
  pool.push_incoming(0, std::move(buf));
  pool.release();
  EXPECT_EQ(pool.shard(0, 0).capacity(), 0u);
  EXPECT_EQ(pool.free_buffers(), 0u);
  EXPECT_TRUE(pool.incoming().empty());
}

// The reducer keeps exactly the running-minimum subsequence per key: every
// dropped message is >= an earlier kept message with the same key, so it
// could not have changed any receiver state (strict-< running min).
TEST(SenderReducer, KeepsRunningMinimumSubsequence) {
  SenderReducer<std::uint32_t> red;
  red.ensure(4);
  std::vector<Msg> buf = {{0, 9}, {0, 9}, {1, 5}, {0, 7}, {0, 8},
                          {1, 5}, {0, 3}, {1, 2}, {0, 3}};
  red.begin_dest();
  const std::size_t dropped =
      red.reduce(buf, [](const Msg& m) { return std::size_t(m.v); },
                 [](const Msg& m) { return m.nd; });
  const std::vector<Msg> want = {{0, 9}, {1, 5}, {0, 7}, {0, 3}, {1, 2}};
  EXPECT_EQ(buf, want);  // stable: original relative order retained
  EXPECT_EQ(dropped, 4u);
}

// begin_dest() opens a fresh stream: per-destination tables are logically
// independent even though the stamp storage is shared (epoch advance).
TEST(SenderReducer, DestinationsAreIndependentStreams) {
  SenderReducer<std::uint32_t> red;
  red.ensure(1);
  std::vector<Msg> a = {{0, 5}};
  std::vector<Msg> b = {{0, 5}};  // same key+value, different destination
  red.begin_dest();
  red.reduce(a, [](const Msg& m) { return std::size_t(m.v); },
             [](const Msg& m) { return m.nd; });
  red.begin_dest();
  red.reduce(b, [](const Msg& m) { return std::size_t(m.v); },
             [](const Msg& m) { return m.nd; });
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);  // not dropped against destination a's stream
}

// Lane shards of one destination share the stream: a message in lane 1
// that does not improve on lane 0's best for the same key is dropped.
TEST(SenderReducer, LaneShardsShareOneStreamPerDestination) {
  SenderReducer<std::uint32_t> red;
  red.ensure(1);
  std::vector<Msg> lane0 = {{0, 4}};
  std::vector<Msg> lane1 = {{0, 6}, {0, 2}};
  red.begin_dest();
  red.reduce(lane0, [](const Msg& m) { return std::size_t(m.v); },
             [](const Msg& m) { return m.nd; });
  red.reduce(lane1, [](const Msg& m) { return std::size_t(m.v); },
             [](const Msg& m) { return m.nd; });
  EXPECT_EQ(lane0.size(), 1u);
  const std::vector<Msg> want1 = {{0, 2}};
  EXPECT_EQ(lane1, want1);
}

// Zero-copy: the vector a sender posts is byte-for-byte the vector the
// receiver takes — same heap allocation, no pack/unpack copies.
TEST(ErasedBufferBoard, SegmentsMoveThroughWithoutCopy) {
  ExchangeBoard board(2, /*checked=*/true);
  std::vector<Msg> payload = {{1, 2}, {3, 4}};
  const Msg* data = payload.data();
  std::vector<ErasedBuffer> segments;
  segments.push_back(ErasedBuffer(std::move(payload)));
  board.post_segments(0, 1, std::move(segments), 1);
  auto got = board.take_segments(0, 1, 1);
  ASSERT_EQ(got.size(), 1u);
  std::vector<Msg> back = got[0].take_as<Msg>();
  EXPECT_EQ(back.data(), data);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[1].nd, 4u);
}

TEST(ErasedBufferBoard, EmptySegmentListIsAValidRound) {
  ExchangeBoard board(2, /*checked=*/true);
  board.post_segments(0, 1, {}, 1);
  EXPECT_TRUE(board.take_segments(0, 1, 1).empty());
  // The slot epoch advanced: round 2 posts/takes line up.
  board.post_segments(0, 1, {}, 2);
  EXPECT_TRUE(board.take_segments(0, 1, 2).empty());
}

TEST(ErasedBufferBoard, WrongElementTypeIsTypeConfusion) {
  ExchangeBoard board(2, /*checked=*/true);
  std::vector<ErasedBuffer> segments;
  segments.push_back(ErasedBuffer(std::vector<Msg>{{1, 2}}));
  board.post_segments(0, 1, std::move(segments), 1);
  auto got = board.take_segments(0, 1, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_THROW((void)got[0].take_as<std::uint64_t>(), ProtocolError);
}

// exchange_pooled delivers the same messages in the same canonical order
// as the byte-packing exchange over the merged shards — source rank
// ascending (self in place), lane order within a source.
TEST(ExchangePooled, MatchesMergedExchangeOrder) {
  constexpr rank_t kRanks = 3;
  constexpr unsigned kLanes = 2;
  Machine machine({.num_ranks = kRanks, .lanes_per_rank = kLanes});
  std::vector<std::vector<Msg>> pooled_in(kRanks);
  std::vector<std::vector<Msg>> merged_in(kRanks);

  auto fill = [](SendBufferPool<Msg>& pool, rank_t r) {
    pool.configure(kLanes, kRanks);
    pool.begin_phase();
    for (unsigned l = 0; l < kLanes; ++l) {
      for (rank_t d = 0; d < kRanks; ++d) {
        for (std::uint32_t i = 0; i < 3; ++i) {
          pool.shard(l, d).push_back({r * 100u + l * 10u + i, d});
        }
      }
    }
  };
  auto flatten = [](SendBufferPool<Msg>& pool) {
    std::vector<Msg> flat;
    for (const auto& batch : pool.incoming()) {
      flat.insert(flat.end(), batch.begin(), batch.end());
    }
    return flat;
  };

  machine.run([&](RankCtx& ctx) {
    SendBufferPool<Msg> pool;
    fill(pool, ctx.rank());
    ctx.exchange_pooled(pool, PhaseKind::kShortPhase);
    pooled_in[ctx.rank()] = flatten(pool);
    fill(pool, ctx.rank());
    ctx.exchange_merged(pool, PhaseKind::kShortPhase);
    merged_in[ctx.rank()] = flatten(pool);
  });
  for (rank_t r = 0; r < kRanks; ++r) {
    EXPECT_EQ(pooled_in[r], merged_in[r]) << "rank " << r;
    EXPECT_EQ(pooled_in[r].size(), kRanks * kLanes * 3u);
  }
}

// Capacity circulates: after a warm-up exchange, subsequent identical
// rounds allocate nothing new — every shard is re-seated from recycled
// incoming buffers.
TEST(ExchangePooled, SteadyStateReusesBuffers) {
  constexpr rank_t kRanks = 2;
  Machine machine({.num_ranks = kRanks});
  machine.run([&](RankCtx& ctx) {
    SendBufferPool<Msg> pool;
    pool.configure(1, kRanks);
    for (int round = 0; round < 4; ++round) {
      pool.begin_phase();
      for (rank_t d = 0; d < kRanks; ++d) {
        for (std::uint32_t i = 0; i < 50; ++i) pool.shard(0, d).push_back({i, d});
      }
      if (round >= 2) {
        // Warmed up: both shards must already hold recycled capacity.
        for (rank_t d = 0; d < kRanks; ++d) {
          EXPECT_GE(pool.shard(0, d).capacity(), 50u) << "round " << round;
        }
      }
      ctx.exchange_pooled(pool, PhaseKind::kShortPhase);
      std::size_t got = 0;
      for (const auto& b : pool.incoming()) got += b.size();
      EXPECT_EQ(got, kRanks * 50u);
    }
  });
}

}  // namespace
}  // namespace parsssp
