#include "runtime/traffic_stats.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

TEST(TrafficCounters, AddAccumulatesPerKind) {
  TrafficCounters c;
  c.add(PhaseKind::kShortPhase, 10, 160);
  c.add(PhaseKind::kShortPhase, 5, 80);
  c.add(PhaseKind::kLongPush, 2, 32);
  EXPECT_EQ(c.messages[static_cast<std::size_t>(PhaseKind::kShortPhase)], 15u);
  EXPECT_EQ(c.bytes[static_cast<std::size_t>(PhaseKind::kShortPhase)], 240u);
  EXPECT_EQ(c.total_messages(), 17u);
  EXPECT_EQ(c.total_bytes(), 272u);
}

TEST(TrafficCounters, PlusEquals) {
  TrafficCounters a, b;
  a.add(PhaseKind::kPullRequest, 1, 24);
  b.add(PhaseKind::kPullRequest, 2, 48);
  b.add(PhaseKind::kControl, 3, 12);
  a += b;
  EXPECT_EQ(a.total_messages(), 6u);
  EXPECT_EQ(a.total_bytes(), 84u);
}

TEST(TrafficStats, MergedSumsRanks) {
  TrafficStats s(3);
  s.rank(0).add(PhaseKind::kShortPhase, 1, 16);
  s.rank(1).add(PhaseKind::kShortPhase, 2, 32);
  s.rank(2).add(PhaseKind::kBellmanFord, 4, 64);
  const TrafficCounters merged = s.merged();
  EXPECT_EQ(merged.total_messages(), 7u);
  EXPECT_EQ(merged.total_bytes(), 112u);
}

TEST(TrafficStats, MaxRankMessages) {
  TrafficStats s(3);
  s.rank(0).add(PhaseKind::kShortPhase, 1, 16);
  s.rank(1).add(PhaseKind::kShortPhase, 10, 160);
  s.rank(2).add(PhaseKind::kLongPush, 3, 48);
  EXPECT_EQ(s.max_rank_messages(), 10u);
}

TEST(TrafficStats, Reset) {
  TrafficStats s(2);
  s.rank(0).add(PhaseKind::kControl, 5, 20);
  s.reset();
  EXPECT_EQ(s.merged().total_messages(), 0u);
}

TEST(PhaseKindName, AllNamed) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(PhaseKind::kCount);
       ++i) {
    EXPECT_NE(phase_kind_name(static_cast<PhaseKind>(i)), "?");
  }
}

}  // namespace
}  // namespace parsssp
