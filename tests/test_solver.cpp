#include "core/solver.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph() {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

TEST(Solver, PartitionMatchesGraphAndMachine) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 4}});
  EXPECT_EQ(solver.partition().num_vertices(), g.num_vertices());
  EXPECT_EQ(solver.partition().num_ranks(), 4u);
  EXPECT_EQ(solver.machine().num_ranks(), 4u);
}

TEST(Solver, PreprocessTimeRecorded) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  solver.solve(0, SsspOptions::del(25));
  EXPECT_GT(solver.last_preprocess_seconds(), 0.0);
}

TEST(Solver, ViewsReusedAcrossRootsAtSameDelta) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  solver.solve(0, SsspOptions::del(25));
  const double first = solver.last_preprocess_seconds();
  solver.solve(1, SsspOptions::del(25));
  // Not rebuilt: the recorded preprocessing time is unchanged.
  EXPECT_EQ(solver.last_preprocess_seconds(), first);
}

TEST(Solver, DistVectorCoversAllVertices) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 3}});
  const auto r = solver.solve(0, SsspOptions::opt(25));
  EXPECT_EQ(r.dist.size(), g.num_vertices());
}

TEST(Solver, StatsResetBetweenSolves) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto a = solver.solve(0, SsspOptions::del(25));
  const auto b = solver.solve(0, SsspOptions::del(25));
  EXPECT_EQ(a.stats.total_relaxations(), b.stats.total_relaxations());
  EXPECT_EQ(a.stats.phases, b.stats.phases);
}

TEST(Solver, GraphAccessor) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 1}});
  EXPECT_EQ(&solver.graph(), &g);
}

TEST(Solver, OutOfRangeRootThrowsDescriptively) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  EXPECT_THROW(solver.solve(g.num_vertices(), SsspOptions::del(25)),
               std::out_of_range);
  const std::vector<vid_t> roots = {0, g.num_vertices() + 7};
  EXPECT_THROW(solver.solve_batch(roots, SsspOptions::del(25)),
               std::out_of_range);
  EXPECT_THROW(solver.solve_multi(roots, SsspOptions::del(25)),
               std::out_of_range);
  // The message names the offending root and the valid bound — debuggable
  // without a stack trace.
  try {
    solver.solve(g.num_vertices(), SsspOptions::del(25));
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(g.num_vertices())), std::string::npos)
        << what;
    EXPECT_NE(what.find("root"), std::string::npos) << what;
  }
}

TEST(Solver, ManyRanksOnTinyGraph) {
  EdgeList list;
  list.add_edge(0, 1, 5);
  list.add_edge(1, 2, 5);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 16}});
  const auto r = solver.solve(0, SsspOptions::opt(25));
  EXPECT_EQ(r.dist, dijkstra_distances(g, 0));
}

}  // namespace
}  // namespace parsssp
