#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

TEST(EdgeList, StartsEmpty) {
  EdgeList list;
  EXPECT_EQ(list.num_vertices(), 0u);
  EXPECT_EQ(list.num_edges(), 0u);
  EXPECT_TRUE(list.empty());
}

TEST(EdgeList, VertexBoundFromConstructor) {
  EdgeList list(10);
  EXPECT_EQ(list.num_vertices(), 10u);
  EXPECT_EQ(list.num_edges(), 0u);
}

TEST(EdgeList, AddEdgeExtendsVertexBound) {
  EdgeList list;
  list.add_edge(3, 7, 5);
  EXPECT_EQ(list.num_vertices(), 8u);
  EXPECT_EQ(list.num_edges(), 1u);
  EXPECT_EQ(list.edges()[0], (WeightedEdge{3, 7, 5}));
}

TEST(EdgeList, EnsureVerticesNeverShrinks) {
  EdgeList list(10);
  list.ensure_vertices(5);
  EXPECT_EQ(list.num_vertices(), 10u);
  list.ensure_vertices(20);
  EXPECT_EQ(list.num_vertices(), 20u);
}

TEST(EdgeList, CanonicalizeSortsEndpointsAndList) {
  EdgeList list;
  list.add_edge(5, 1, 9);
  list.add_edge(0, 2, 3);
  list.add_edge(2, 0, 1);
  list.canonicalize();
  const auto& e = list.edges();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0], (WeightedEdge{0, 2, 1}));
  EXPECT_EQ(e[1], (WeightedEdge{0, 2, 3}));
  EXPECT_EQ(e[2], (WeightedEdge{1, 5, 9}));
}

TEST(EdgeList, DedupKeepsSmallestWeight) {
  EdgeList list;
  list.add_edge(1, 2, 7);
  list.add_edge(2, 1, 3);
  list.add_edge(1, 2, 5);
  list.dedup_and_strip_self_loops();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_EQ(list.edges()[0], (WeightedEdge{1, 2, 3}));
}

TEST(EdgeList, DedupStripsSelfLoops) {
  EdgeList list;
  list.add_edge(4, 4, 1);
  list.add_edge(1, 2, 2);
  list.add_edge(9, 9, 3);
  list.dedup_and_strip_self_loops();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_EQ(list.edges()[0], (WeightedEdge{1, 2, 2}));
  // Vertex bound untouched by dedup.
  EXPECT_EQ(list.num_vertices(), 10u);
}

TEST(EdgeList, DedupOnEmptyListIsNoop) {
  EdgeList list(4);
  list.dedup_and_strip_self_loops();
  EXPECT_EQ(list.num_edges(), 0u);
  EXPECT_EQ(list.num_vertices(), 4u);
}

TEST(EdgeList, ReserveDoesNotChangeCounts) {
  EdgeList list;
  list.reserve(100);
  EXPECT_EQ(list.num_edges(), 0u);
}

TEST(EdgeList, MutableEdgesAllowsWeightRewrite) {
  EdgeList list;
  list.add_edge(0, 1, 1);
  list.mutable_edges()[0].w = 42;
  EXPECT_EQ(list.edges()[0].w, 42u);
}

}  // namespace
}  // namespace parsssp
