// Shortest-path-tree (parent) tracking: the Graph 500 SSSP output format.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph rmat_graph(std::uint32_t scale, std::uint64_t seed = 1) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

TEST(ParentTree, EmptyUnlessRequested) {
  const auto g = rmat_graph(8);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::opt(25));
  EXPECT_TRUE(r.parent.empty());
}

TEST(ParentTree, RootIsItsOwnParent) {
  const auto g = rmat_graph(8);
  const vid_t root = sample_roots(g, 1, 1).at(0);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions o = SsspOptions::opt(25);
  o.track_parents = true;
  const auto r = solver.solve(root, o);
  ASSERT_EQ(r.parent.size(), g.num_vertices());
  EXPECT_EQ(r.parent[root], root);
}

TEST(ParentTree, UnreachableHaveNoParent) {
  EdgeList list(5);
  list.add_edge(0, 1, 3);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions o = SsspOptions::del(5);
  o.track_parents = true;
  const auto r = solver.solve(0, o);
  EXPECT_EQ(r.parent[2], kInvalidVid);
  EXPECT_EQ(r.parent[1], 0u);
}

TEST(ParentTree, ValidForEveryVariant) {
  const auto g = rmat_graph(9, 3);
  const auto roots = sample_roots(g, 2, 5);
  struct Variant {
    const char* name;
    SsspOptions options;
  };
  std::vector<Variant> variants = {
      {"dijkstra", SsspOptions::dijkstra()},
      {"bf", SsspOptions::bellman_ford()},
      {"del", SsspOptions::del(25)},
      {"prune-push", SsspOptions::prune(25)},
      {"opt", SsspOptions::opt(25)},
      {"lbopt", SsspOptions::lb_opt(25, 16)},
  };
  variants[3].options.prune_mode = PruneMode::kPushOnly;
  Solver solver(g, {.machine = {.num_ranks = 4}});
  for (auto& v : variants) {
    v.options.track_parents = true;
    for (const vid_t root : roots) {
      const auto r = solver.solve(root, v.options);
      const auto rep = check_parent_tree(g, root, r.dist, r.parent);
      EXPECT_TRUE(rep.ok) << v.name << " root=" << root << ": "
                          << rep.message;
    }
  }
}

TEST(ParentTree, ValidUnderPullMode) {
  const auto g = rmat_graph(9, 7);
  const vid_t root = sample_roots(g, 1, 1).at(0);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  SsspOptions o = SsspOptions::prune(25);
  o.prune_mode = PruneMode::kPullOnly;
  o.track_parents = true;
  const auto r = solver.solve(root, o);
  const auto rep = check_parent_tree(g, root, r.dist, r.parent);
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(ParentTree, ZeroWeightEdgesNoCycles) {
  EdgeList list;
  list.add_edge(0, 1, 0);
  list.add_edge(1, 2, 0);
  list.add_edge(2, 3, 4);
  list.add_edge(3, 4, 0);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions o = SsspOptions::opt(5);
  o.track_parents = true;
  const auto r = solver.solve(0, o);
  const auto rep = check_parent_tree(g, 0, r.dist, r.parent);
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(ParentTree, DistancesUnaffectedByTracking) {
  const auto g = rmat_graph(9, 11);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions with = SsspOptions::opt(25);
  with.track_parents = true;
  SsspOptions without = SsspOptions::opt(25);
  EXPECT_EQ(solver.solve(0, with).dist, solver.solve(0, without).dist);
}

TEST(ParentTreeCheck, DetectsBrokenTreeEdge) {
  const auto g = rmat_graph(8);
  const vid_t root = sample_roots(g, 1, 1).at(0);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  SsspOptions o = SsspOptions::opt(25);
  o.track_parents = true;
  auto r = solver.solve(root, o);
  // Corrupt one reached vertex's parent to a non-adjacent vertex.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v != root && r.dist[v] != kInfDist && g.degree(v) == 1) {
      r.parent[v] = v;  // self-parent: no such tree edge
      break;
    }
  }
  EXPECT_FALSE(check_parent_tree(g, root, r.dist, r.parent).ok);
}

TEST(ParentTreeCheck, DetectsCycle) {
  // Hand-built 0-1-2 path with a 1<->2 parent cycle over zero-weight edges.
  EdgeList list;
  list.add_edge(0, 1, 0);
  list.add_edge(1, 2, 0);
  list.add_edge(2, 1, 0);
  const auto g = CsrGraph::from_edges(list);
  const std::vector<dist_t> dist{0, 0, 0};
  const std::vector<vid_t> parent{0, 2, 1};  // cycle between 1 and 2
  EXPECT_FALSE(check_parent_tree(g, 0, dist, parent).ok);
}

}  // namespace
}  // namespace parsssp
