// Randomized fuzz sweep: many small random graphs (Erdos-Renyi-ish and
// R-MAT shapes, varied weight ranges including heavy zero-weight fractions)
// against the Dijkstra oracle, across algorithm variants and machine
// shapes. Complements test_engine_property's structured sweep.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

// Deterministic random graph: n vertices, m edges sampled by hashing,
// weights in [min_w, max_w] (min_w may be 0 to stress proxy-style edges).
CsrGraph random_graph(std::uint64_t seed, vid_t n, std::size_t m,
                      weight_t min_w, weight_t max_w) {
  EdgeList list(n);
  for (std::size_t i = 0; i < m; ++i) {
    const vid_t u = static_cast<vid_t>(rmat_hash(seed, 3 * i) % n);
    const vid_t v = static_cast<vid_t>(rmat_hash(seed, 3 * i + 1) % n);
    const weight_t w = static_cast<weight_t>(
        min_w + rmat_hash(seed, 3 * i + 2) % (max_w - min_w + 1));
    list.add_edge(u, v, w);
  }
  return CsrGraph::from_edges(list);
}

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, AllVariantsMatchOracle) {
  const std::uint64_t seed = GetParam();
  // Vary the shape with the seed.
  const vid_t n = 30 + rmat_hash(seed, 100) % 200;
  const std::size_t m = n * (1 + rmat_hash(seed, 101) % 6);
  const weight_t min_w = (seed % 3 == 0) ? 0 : 1;  // every 3rd: zero weights
  const weight_t max_w = static_cast<weight_t>(2 + rmat_hash(seed, 102) % 254);
  const auto g = random_graph(seed, n, m, min_w, max_w);
  const vid_t root = static_cast<vid_t>(rmat_hash(seed, 103) % n);
  const auto expected = dijkstra_distances(g, root);

  const rank_t ranks = 1 + rmat_hash(seed, 104) % 6;
  const unsigned lanes = 1 + rmat_hash(seed, 105) % 3;
  Solver solver(g, {.machine = {.num_ranks = ranks,
                                .lanes_per_rank = lanes}});

  const std::uint32_t delta =
      1 + static_cast<std::uint32_t>(rmat_hash(seed, 106) % max_w);
  SsspOptions variants[] = {
      SsspOptions::dijkstra(),     SsspOptions::bellman_ford(),
      SsspOptions::del(delta),     SsspOptions::prune(delta),
      SsspOptions::opt(delta),     SsspOptions::lb_opt(delta, 4),
  };
  for (auto& o : variants) {
    o.track_parents = true;
    const auto r = solver.solve(root, o);
    ASSERT_EQ(r.dist, expected)
        << "seed=" << seed << " n=" << n << " m=" << m << " delta=" << delta
        << " ranks=" << ranks << " lanes=" << lanes;
    const auto tree = check_parent_tree(g, root, r.dist, r.parent);
    ASSERT_TRUE(tree.ok) << "seed=" << seed << ": " << tree.message;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// Adversarial fixed topologies under every prune mode.
class AdversarialTopology
    : public ::testing::TestWithParam<std::tuple<int, PruneMode>> {};

CsrGraph make_topology(int kind) {
  EdgeList list;
  switch (kind) {
    case 0:  // two hubs sharing leaves (double star)
      for (vid_t leaf = 2; leaf < 40; ++leaf) {
        list.add_edge(0, leaf, 1 + leaf % 7);
        list.add_edge(1, leaf, 2 + leaf % 5);
      }
      break;
    case 1:  // barbell: clique - path - clique
      for (vid_t u = 0; u < 8; ++u) {
        for (vid_t v = u + 1; v < 8; ++v) list.add_edge(u, v, 3);
      }
      for (vid_t u = 20; u < 28; ++u) {
        for (vid_t v = u + 1; v < 28; ++v) list.add_edge(u, v, 3);
      }
      for (vid_t i = 7; i < 20; ++i) list.add_edge(i, i + 1, 9);
      break;
    case 2:  // binary tree with mixed weights
      for (vid_t v = 1; v < 63; ++v) {
        list.add_edge((v - 1) / 2, v, 1 + (v * 13) % 40);
      }
      break;
    case 3:  // cycle with chords
      for (vid_t v = 0; v < 50; ++v) list.add_edge(v, (v + 1) % 50, 5);
      for (vid_t v = 0; v < 50; v += 7) list.add_edge(v, (v + 25) % 50, 2);
      break;
    default:  // parallel multi-edges and self loops
      for (vid_t v = 0; v < 10; ++v) {
        list.add_edge(v, (v + 1) % 10, 4);
        list.add_edge(v, (v + 1) % 10, 6);
        list.add_edge(v, v, 1);
      }
      break;
  }
  return CsrGraph::from_edges(list);
}

TEST_P(AdversarialTopology, CorrectUnderEveryPruneMode) {
  const auto [kind, mode] = GetParam();
  const auto g = make_topology(kind);
  const auto expected = dijkstra_distances(g, 0);
  Solver solver(g, {.machine = {.num_ranks = 3}});
  SsspOptions o = SsspOptions::prune(5);
  o.prune_mode = mode;
  EXPECT_EQ(solver.solve(0, o).dist, expected);
}

std::string adversarial_name(
    const ::testing::TestParamInfo<std::tuple<int, PruneMode>>& info) {
  static const char* const kModes[] = {"Push", "Pull", "Heuristic", "Forced"};
  return "shape" + std::to_string(std::get<0>(info.param)) +
         kModes[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdversarialTopology,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(PruneMode::kPushOnly,
                                         PruneMode::kPullOnly,
                                         PruneMode::kHeuristic)),
    adversarial_name);

}  // namespace
}  // namespace parsssp
