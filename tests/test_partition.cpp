#include "runtime/partition.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

TEST(Partition, EvenSplit) {
  const BlockPartition p(100, 4);
  EXPECT_EQ(p.block_size(), 25u);
  for (rank_t r = 0; r < 4; ++r) EXPECT_EQ(p.count(r), 25u);
}

TEST(Partition, UnevenSplitLastRankShort) {
  const BlockPartition p(10, 4);  // blocks of 3: 3,3,3,1
  EXPECT_EQ(p.block_size(), 3u);
  EXPECT_EQ(p.count(0), 3u);
  EXPECT_EQ(p.count(3), 1u);
}

TEST(Partition, OwnerAndLocalRoundTrip) {
  const BlockPartition p(10, 4);
  for (vid_t v = 0; v < 10; ++v) {
    const rank_t r = p.owner(v);
    EXPECT_LT(r, 4u);
    EXPECT_EQ(p.global_id(r, p.local_id(v)), v);
    EXPECT_GE(v, p.begin(r));
    EXPECT_LT(v, p.end(r));
  }
}

TEST(Partition, CountsSumToN) {
  for (vid_t n : {1u, 7u, 64u, 100u, 1023u}) {
    for (rank_t ranks : {1u, 2u, 3u, 8u, 16u}) {
      const BlockPartition p(n, ranks);
      vid_t total = 0;
      for (rank_t r = 0; r < ranks; ++r) total += p.count(r);
      EXPECT_EQ(total, n) << "n=" << n << " ranks=" << ranks;
    }
  }
}

TEST(Partition, MoreRanksThanVertices) {
  const BlockPartition p(3, 8);
  vid_t total = 0;
  for (rank_t r = 0; r < 8; ++r) total += p.count(r);
  EXPECT_EQ(total, 3u);
  for (vid_t v = 0; v < 3; ++v) EXPECT_LT(p.owner(v), 8u);
}

TEST(Partition, SingleRankOwnsEverything) {
  const BlockPartition p(42, 1);
  for (vid_t v = 0; v < 42; ++v) {
    EXPECT_EQ(p.owner(v), 0u);
    EXPECT_EQ(p.local_id(v), v);
  }
}

TEST(Partition, EmptyGraph) {
  const BlockPartition p(0, 4);
  for (rank_t r = 0; r < 4; ++r) EXPECT_EQ(p.count(r), 0u);
}

}  // namespace
}  // namespace parsssp
