// QueryEngine end-to-end: served answers must be bit-identical to
// Solver::solve under every algorithm / Delta / rank count, cache hits must
// be real hits with identical answers, and the batching policy must close
// batches both by size and by window deadline.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <tuple>
#include <vector>

#include "core/solver.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"
#include "serve/query_engine.hpp"

namespace parsssp {
namespace {

using namespace std::chrono_literals;

CsrGraph rmat_graph(std::uint64_t seed, int scale = 8) {
  RmatConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 8;
  cfg.seed = seed;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

ServeConfig serve_config(rank_t ranks, std::size_t max_batch,
                         std::chrono::nanoseconds window = 200us,
                         std::size_t cache = 64) {
  ServeConfig config;
  config.machine.num_ranks = ranks;
  config.machine.checked_exchange = true;
  config.max_batch = max_batch;
  config.batch_window = window;
  config.cache_capacity = cache;
  return config;
}

using Param = std::tuple<std::uint32_t /*delta*/, rank_t>;

class QueryEngineProperty : public ::testing::TestWithParam<Param> {};

TEST_P(QueryEngineProperty, AnswersMatchSolverBitForBit) {
  const auto [delta, ranks] = GetParam();
  const auto g = rmat_graph(4);
  Solver solver(g, {.machine = {.num_ranks = ranks}});
  QueryEngine engine(g, serve_config(ranks, /*max_batch=*/4));

  for (const SsspOptions& options :
       {SsspOptions::del(delta), SsspOptions::prune(delta),
        SsspOptions::opt(delta)}) {
    std::vector<std::future<QueryResult>> futures;
    const std::vector<vid_t> roots = {2, 19, 80, 111};
    for (const vid_t root : roots) {
      futures.push_back(engine.submit(root, options));
    }
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const QueryResult r = futures[i].get();
      ASSERT_NE(r.answer, nullptr);
      EXPECT_EQ(r.answer->root, roots[i]);
      EXPECT_EQ(r.answer->dist, solver.solve(roots[i], options).dist)
          << "delta=" << delta << " ranks=" << ranks << " root=" << roots[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryEngineProperty,
    ::testing::Combine(::testing::Values(1u, 25u, 256u),
                       ::testing::Values(rank_t{1}, rank_t{2}, rank_t{5})),
    [](const ::testing::TestParamInfo<Param>& tpi) {
      return "delta" + std::to_string(std::get<0>(tpi.param)) + "_ranks" +
             std::to_string(std::get<1>(tpi.param));
    });

TEST(QueryEngine, SecondIdenticalQueryIsServedFromCache) {
  const auto g = rmat_graph(6);
  QueryEngine engine(g, serve_config(3, 4));
  const SsspOptions options = SsspOptions::opt(25);

  const QueryResult first = engine.query(33, options);
  EXPECT_FALSE(first.from_cache);
  const QueryResult second = engine.query(33, options);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.answer.get(), first.answer.get());  // the stored object

  const ServeStats stats = engine.stats();
  EXPECT_GE(stats.cache.hits, 1u);
  EXPECT_GE(stats.cache.misses, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(QueryEngine, DifferentOptionsDoNotShareCacheEntries) {
  const auto g = rmat_graph(6);
  QueryEngine engine(g, serve_config(2, 2));
  const QueryResult del = engine.query(10, SsspOptions::del(25));
  const QueryResult opt = engine.query(10, SsspOptions::opt(25));
  EXPECT_FALSE(opt.from_cache);  // same root, different signature
  EXPECT_EQ(del.answer->dist, opt.answer->dist);  // both exact all the same
}

TEST(QueryEngine, LruEvictionForgetsColdRoots) {
  const auto g = rmat_graph(6, /*scale=*/7);
  ServeConfig config = serve_config(2, 1, 200us, /*cache=*/2);
  QueryEngine engine(g, config);
  const SsspOptions options = SsspOptions::del(25);
  engine.query(1, options);
  engine.query(2, options);
  engine.query(3, options);  // evicts root 1
  const QueryResult again = engine.query(1, options);
  EXPECT_FALSE(again.from_cache);
  EXPECT_GE(engine.stats().cache.evictions, 1u);
}

TEST(QueryEngine, BatchClosesAtMaxBatch) {
  const auto g = rmat_graph(8);
  // Window far beyond test runtime: only the size trigger can close.
  QueryEngine engine(g, serve_config(2, /*max_batch=*/4, /*window=*/60s));
  const SsspOptions options = SsspOptions::del(25);
  std::vector<std::future<QueryResult>> futures;
  for (const vid_t root : {5u, 6u, 7u, 8u}) {
    futures.push_back(engine.submit(root, options));
  }
  for (auto& f : futures) f.get();
  const ServeStats stats = engine.stats();
  ASSERT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batch_size_histogram[4], 1u);
  EXPECT_EQ(stats.multi_sweeps, 1u);  // one shared sweep, not 4 solves
}

TEST(QueryEngine, BatchClosesByWindowDeadline) {
  const auto g = rmat_graph(8);
  QueryEngine engine(g, serve_config(2, /*max_batch=*/32, /*window=*/2ms));
  const SsspOptions options = SsspOptions::del(25);
  auto a = engine.submit(40, options);
  auto b = engine.submit(41, options);
  a.get();  // must complete without 30 more arrivals: deadline fired
  b.get();
  const ServeStats stats = engine.stats();
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(QueryEngine, DuplicateRootsInOneBatchComputeOnce) {
  const auto g = rmat_graph(8);
  QueryEngine engine(g, serve_config(2, /*max_batch=*/4, /*window=*/60s,
                                     /*cache=*/0));
  const SsspOptions options = SsspOptions::del(25);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(engine.submit(77, options));
  std::vector<QueryResult> results;
  for (auto& f : futures) results.push_back(f.get());
  for (const auto& r : results) {
    EXPECT_EQ(r.answer.get(), results.front().answer.get());
  }
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.single_solves, 1u);  // one unique root -> per-root engine
  EXPECT_EQ(stats.multi_sweeps, 0u);
}

TEST(QueryEngine, MixedSignaturesBatchSeparatelyButAllComplete) {
  const auto g = rmat_graph(8);
  QueryEngine engine(g, serve_config(2, /*max_batch=*/4, /*window=*/1ms));
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(engine.submit(50 + i, SsspOptions::del(25)));
    futures.push_back(engine.submit(50 + i, SsspOptions::opt(25)));
  }
  for (auto& f : futures) {
    ASSERT_NE(f.get().answer, nullptr);
  }
  EXPECT_EQ(engine.stats().completed, 6u);
}

TEST(QueryEngine, TrackParentsMatchesSolverParents) {
  const auto g = rmat_graph(9);
  constexpr rank_t kRanks = 3;
  Solver solver(g, {.machine = {.num_ranks = kRanks}});
  QueryEngine engine(g, serve_config(kRanks, 4));
  SsspOptions options = SsspOptions::opt(25);
  options.track_parents = true;

  const auto expected = solver.solve(12, options);
  const QueryResult served = engine.query(12, options);
  EXPECT_EQ(served.answer->dist, expected.dist);
  EXPECT_EQ(served.answer->parent, expected.parent);
}

TEST(QueryEngine, CancelPendingFailsUnbatchedQueries) {
  const auto g = rmat_graph(9);
  // One query, huge batch + window: it can only sit in the queue.
  QueryEngine engine(g, serve_config(2, /*max_batch=*/64, /*window=*/60s));
  auto orphan = engine.submit(3, SsspOptions::del(25));
  EXPECT_EQ(engine.cancel_pending(), 1u);
  EXPECT_THROW(orphan.get(), JobCancelled);
  EXPECT_EQ(engine.stats().cancelled, 1u);
  // The engine still serves after a cancellation.
  EXPECT_EQ(engine.cancel_pending(), 0u);
}

TEST(QueryEngine, DestructorFailsQueuedQueries) {
  const auto g = rmat_graph(9);
  std::future<QueryResult> orphan;
  {
    QueryEngine engine(g, serve_config(2, /*max_batch=*/64, /*window=*/60s));
    orphan = engine.submit(3, SsspOptions::del(25));
  }
  EXPECT_THROW(orphan.get(), JobCancelled);
}

TEST(QueryEngine, SubmitValidatesUpFront) {
  const auto g = rmat_graph(9, /*scale=*/6);
  QueryEngine engine(g, serve_config(2, 2));
  // An out-of-range root is a range error, distinct from malformed options.
  EXPECT_THROW(engine.submit(g.num_vertices(), SsspOptions::del(25)),
               std::out_of_range);
  SsspOptions zero_delta = SsspOptions::del(25);
  zero_delta.delta = 0;
  EXPECT_THROW(engine.submit(0, zero_delta), std::invalid_argument);
}

TEST(QueryEngine, ServedAnswersMatchOracleAcrossDeltaChanges) {
  // Changing Delta between queries rebuilds the edge views on the session;
  // answers must stay exact through the rebuilds.
  const auto g = rmat_graph(10, /*scale=*/7);
  QueryEngine engine(g, serve_config(2, 2));
  for (const std::uint32_t delta : {5u, 25u, 5u}) {
    const QueryResult r = engine.query(21, SsspOptions::del(delta));
    EXPECT_EQ(r.answer->dist, dijkstra_distances(g, 21)) << "delta=" << delta;
  }
}

}  // namespace
}  // namespace parsssp
