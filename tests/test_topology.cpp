#include "runtime/topology.hpp"

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"

namespace parsssp {
namespace {

TEST(Torus, RingDistances) {
  const TorusTopology ring({8});
  EXPECT_EQ(ring.hops(0, 1), 1u);
  EXPECT_EQ(ring.hops(0, 4), 4u);
  EXPECT_EQ(ring.hops(0, 7), 1u);  // wraparound
  EXPECT_EQ(ring.diameter(), 4u);
}

TEST(Torus, TwoDGrid) {
  const TorusTopology torus({4, 4});
  EXPECT_EQ(torus.capacity(), 16u);
  EXPECT_EQ(torus.hops(0, 5), 2u);   // (0,0)->(1,1)
  EXPECT_EQ(torus.hops(0, 15), 2u);  // (0,0)->(3,3) wraps both dims
  EXPECT_EQ(torus.diameter(), 4u);
}

TEST(Torus, CoordinatesRoundTrip) {
  const TorusTopology torus({2, 3, 4});
  for (rank_t r = 0; r < torus.capacity(); ++r) {
    const auto c = torus.coordinates(r);
    ASSERT_EQ(c.size(), 3u);
    const rank_t back = (c[0] * 3 + c[1]) * 4 + c[2];
    EXPECT_EQ(back, r);
  }
}

TEST(Torus, SymmetryAndIdentity) {
  const TorusTopology torus({3, 5});
  for (rank_t a = 0; a < torus.capacity(); ++a) {
    EXPECT_EQ(torus.hops(a, a), 0u);
    for (rank_t b = 0; b < torus.capacity(); ++b) {
      EXPECT_EQ(torus.hops(a, b), torus.hops(b, a));
    }
  }
}

TEST(Torus, BalancedCoversRanks) {
  for (const rank_t ranks : {1u, 7u, 16u, 33u}) {
    const auto torus = TorusTopology::balanced(ranks, 3);
    EXPECT_GE(torus.capacity(), ranks);
  }
}

TEST(Torus, MeanHopsPositive) {
  const auto torus = TorusTopology::balanced(32, 3);
  EXPECT_GT(torus.mean_hops(), 0.0);
  EXPECT_LE(torus.mean_hops(), torus.diameter());
}

TEST(Torus, RejectsBadDims) {
  EXPECT_THROW(TorusTopology({}), std::invalid_argument);
  EXPECT_THROW(TorusTopology({4, 0}), std::invalid_argument);
}

TEST(Torus, WeightedVolume) {
  const TorusTopology ring({4});
  // 10 messages 0->1 (1 hop), 5 messages 0->2 (2 hops).
  std::vector<std::uint64_t> matrix(16, 0);
  matrix[0 * 4 + 1] = 10;
  matrix[0 * 4 + 2] = 5;
  EXPECT_DOUBLE_EQ(ring.weighted_volume(matrix, 4), 10.0 + 10.0);
}

TEST(PairTraffic, RecordedWhenEnabled) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  Solver solver(g, {.machine = {.num_ranks = 4, .lanes_per_rank = 1,
                                .record_pair_traffic = true}});
  const vid_t root = sample_roots(g, 1, 1).at(0);
  solver.solve(root, SsspOptions::del(25));
  const auto& matrix = solver.machine().pair_messages();
  ASSERT_EQ(matrix.size(), 16u);
  std::uint64_t total = 0;
  std::uint64_t diagonal = 0;
  for (rank_t s = 0; s < 4; ++s) {
    for (rank_t d = 0; d < 4; ++d) {
      total += matrix[s * 4 + d];
      if (s == d) diagonal += matrix[s * 4 + d];
    }
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(diagonal, 0u);  // self messages never hit the network
}

TEST(PairTraffic, EmptyWhenDisabled) {
  RmatConfig cfg;
  cfg.scale = 8;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  Solver solver(g, {.machine = {.num_ranks = 2}});
  solver.solve(0, SsspOptions::del(25));
  EXPECT_TRUE(solver.machine().pair_messages().empty());
}

}  // namespace
}  // namespace parsssp
