#include "core/delta_choice.hpp"

#include <gtest/gtest.h>

#include "bench_util/runner.hpp"
#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

TEST(DeltaChoice, Graph500SettingLandsInPapersWinningRange) {
  const CsrGraph g = build_rmat_graph(RmatFamily::kRmat1, 12);
  const DeltaSuggestion s = suggest_delta(g);
  // Paper Fig 9: Delta in [10, 50] wins for this configuration.
  EXPECT_GE(s.delta, 10u);
  EXPECT_LE(s.delta, 50u);
}

TEST(DeltaChoice, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(suggest_delta(g).delta, 1u);
}

TEST(DeltaChoice, DenseGraphGetsSmallerDelta) {
  // Higher average degree -> narrower buckets.
  EdgeList sparse;
  EdgeList dense;
  for (vid_t i = 0; i < 64; ++i) {
    sparse.add_edge(i, (i + 1) % 64, 100);
    for (vid_t j = 1; j <= 8; ++j) {
      dense.add_edge(i, (i + j) % 64, 100);
    }
  }
  const auto s1 = suggest_delta(CsrGraph::from_edges(sparse));
  const auto s2 = suggest_delta(CsrGraph::from_edges(dense));
  EXPECT_GT(s1.delta, s2.delta);
}

TEST(DeltaChoice, ClampedToWeightRange) {
  // A near-isolated graph (tiny degree) must not suggest Delta > w_max.
  EdgeList list(100);
  list.add_edge(0, 1, 7);
  const auto s = suggest_delta(CsrGraph::from_edges(list));
  EXPECT_LE(s.delta, 7u);
  EXPECT_GE(s.delta, 1u);
}

TEST(DeltaChoice, SuggestedDeltaSolvesCorrectly) {
  const CsrGraph g = build_rmat_graph(RmatFamily::kRmat2, 9);
  const DeltaSuggestion s = suggest_delta(g);
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const vid_t root = sample_roots(g, 1, 1).at(0);
  const auto r = solver.solve(root, SsspOptions::opt(s.delta));
  EXPECT_EQ(r.dist, dijkstra_distances(g, root));
}

}  // namespace
}  // namespace parsssp
