// Safra-style quiescence detection (runtime/quiescence.hpp) under
// adversarial message schedules. The detector is a pure state machine, so
// these tests play transport: they deliver sends, receives and token hops
// in hand-picked (and randomized) orders, including the classic
// false-termination shape — balances sum to zero and the token is white,
// yet a message crossed behind the token — which the color rule must veto.
#include "runtime/quiescence.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace parsssp {
namespace {

using Action = QuiescenceRank::Action;
using Kind = QuiescenceRank::ActionKind;

TEST(Quiescence, SingleRankTerminatesOnFirstPassivePoll) {
  QuiescenceRank r(0, 1);
  EXPECT_EQ(r.poll(false).kind, Kind::kNone);
  EXPECT_EQ(r.poll(true).kind, Kind::kTerminate);
}

TEST(Quiescence, ActiveRankNeverActsAndHoldsTheToken) {
  QuiescenceRank r(1, 3);
  r.receive_token(QuiescenceToken{});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(r.poll(false).kind, Kind::kNone);
    EXPECT_TRUE(r.holds_token());  // the token parks until the rank idles
  }
  EXPECT_EQ(r.poll(true).kind, Kind::kForward);
  EXPECT_FALSE(r.holds_token());
}

TEST(Quiescence, NonZeroRanksNeverLaunchAProbe) {
  QuiescenceRank r(2, 4);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r.poll(true).kind, Kind::kNone);
  EXPECT_EQ(r.rounds_started(), 0u);
}

TEST(Quiescence, RingDestinationWrapsAtTheLastRank) {
  QuiescenceRank last(3, 4);
  last.receive_token(QuiescenceToken{});
  const Action a = last.poll(true);
  ASSERT_EQ(a.kind, Kind::kForward);
  EXPECT_EQ(a.dest, 0u);
}

// A ring that never exchanged a payload message still needs two circuits:
// every rank starts black (it cannot certify a probe it was never whitened
// into), so circuit one dyes the token and only circuit two is clean.
TEST(Quiescence, IdleRingTerminatesInExactlyTwoRounds) {
  constexpr rank_t kN = 4;
  std::vector<QuiescenceRank> ranks;
  for (rank_t r = 0; r < kN; ++r) ranks.emplace_back(r, kN);

  bool terminated = false;
  Action a = ranks[0].poll(true);  // rank 0 launches
  ASSERT_EQ(a.kind, Kind::kForward);
  for (rank_t hop = 0; hop < 4 * kN && !terminated; ++hop) {
    ranks[a.dest].receive_token(a.token);
    const Action next = ranks[a.dest].poll(true);
    ASSERT_NE(next.kind, Kind::kNone);
    if (next.kind == Kind::kTerminate) {
      terminated = true;
      break;
    }
    a = next;
  }
  EXPECT_TRUE(terminated);
  EXPECT_EQ(ranks[0].rounds_started(), 2u);
  for (rank_t r = 1; r < kN; ++r) EXPECT_EQ(ranks[r].rounds_started(), 0u);
}

// The soundness centerpiece: a message chain 2 -> 1 -> 0 races the token.
// Rank 1 forwards the token while still clean, *then* receives; rank 2
// folds +1 (it sent one message); rank 0 already absorbed the final hop,
// so token.balance + c_0 == +1 - 1 == 0 with a white token — the naive
// count certifies termination while work was clearly in flight. Rank 0's
// own color (blackened by the receive) must veto the circuit, and rank 1's
// color must dye the next one; only the fourth circuit may certify.
TEST(Quiescence, MessageCrossingBehindTheTokenIsNotFalseTermination) {
  QuiescenceRank r0(0, 3), r1(1, 3), r2(2, 3);

  // Circuit 1: whitening lap (all ranks start black).
  Action a = r0.poll(true);
  ASSERT_EQ(a.kind, Kind::kForward);
  ASSERT_EQ(a.dest, 1u);
  r1.receive_token(a.token);
  a = r1.poll(true);
  ASSERT_EQ(a.kind, Kind::kForward);
  EXPECT_TRUE(a.token.black);
  r2.receive_token(a.token);
  a = r2.poll(true);
  ASSERT_EQ(a.kind, Kind::kForward);
  r0.receive_token(a.token);
  a = r0.poll(true);  // dirty circuit: relaunch
  ASSERT_EQ(a.kind, Kind::kForward);
  EXPECT_FALSE(a.token.black);

  // Circuit 2: the token passes rank 1 first...
  r1.receive_token(a.token);
  a = r1.poll(true);
  ASSERT_EQ(a.kind, Kind::kForward);
  EXPECT_FALSE(a.token.black);
  EXPECT_EQ(a.token.balance, 0);
  // ...then the message chain crosses behind it: 2 -> 1, then 1 -> 0.
  r2.on_send(1);
  r1.on_receive(1);  // blackens rank 1 — the token is already past it
  r1.on_send(1);
  r0.on_receive(1);  // blackens rank 0
  r2.receive_token(a.token);
  a = r2.poll(true);  // folds +1; rank 2 itself is still white
  ASSERT_EQ(a.kind, Kind::kForward);
  EXPECT_FALSE(a.token.black);
  EXPECT_EQ(a.token.balance, 1);
  r0.receive_token(a.token);
  a = r0.poll(true);
  // White token, balances sum to zero — and still no termination.
  ASSERT_EQ(a.kind, Kind::kForward) << "false termination certified";

  // Circuit 3: rank 1 is black from the crossed receive; it whitens itself
  // but dyes the token, so this circuit cannot certify either.
  r1.receive_token(a.token);
  a = r1.poll(true);
  ASSERT_EQ(a.kind, Kind::kForward);
  EXPECT_TRUE(a.token.black);
  r2.receive_token(a.token);
  a = r2.poll(true);
  r0.receive_token(a.token);
  a = r0.poll(true);
  ASSERT_EQ(a.kind, Kind::kForward);

  // Circuit 4: everyone white, nothing in flight — clean certification.
  r1.receive_token(a.token);
  a = r1.poll(true);
  r2.receive_token(a.token);
  a = r2.poll(true);
  EXPECT_FALSE(a.token.black);
  r0.receive_token(a.token);
  a = r0.poll(true);
  EXPECT_EQ(a.kind, Kind::kTerminate);
  EXPECT_EQ(r0.rounds_started(), 4u);
}

// Reactivation after a clean-looking lull: the ring goes quiet, traffic
// restarts before rank 0 closes the circuit, and detection must wait for
// the new traffic to settle too.
TEST(Quiescence, ReactivationBeforeCircuitCloseDelaysTermination) {
  QuiescenceRank r0(0, 2), r1(1, 2);

  Action a = r0.poll(true);  // launch circuit 1 (whitening lap)
  r1.receive_token(a.token);
  a = r1.poll(true);
  r0.receive_token(a.token);
  a = r0.poll(true);  // black lap: relaunch
  ASSERT_EQ(a.kind, Kind::kForward);

  // Rank 1 is busy again when the token arrives; it parks the token,
  // receives one message and sends one back before going passive.
  r1.receive_token(a.token);
  EXPECT_EQ(r1.poll(false).kind, Kind::kNone);
  r0.on_send(1);
  r1.on_receive(1);
  r1.on_send(1);
  r0.on_receive(1);
  a = r1.poll(true);  // black (it received): dyes the token
  ASSERT_EQ(a.kind, Kind::kForward);
  EXPECT_TRUE(a.token.black);
  r0.receive_token(a.token);
  a = r0.poll(true);
  ASSERT_EQ(a.kind, Kind::kForward);  // not yet

  // One more clean lap certifies.
  r1.receive_token(a.token);
  a = r1.poll(true);
  r0.receive_token(a.token);
  EXPECT_EQ(r0.poll(true).kind, Kind::kTerminate);
}

// Randomized schedules: messages are delivered out of order and interleave
// arbitrarily with token hops. Whenever the detector certifies, nothing may
// be in flight; and once traffic drains, it must certify within a bounded
// number of laps (liveness).
TEST(Quiescence, RandomizedSchedulesNeverCertifyWithTrafficInFlight) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto rnd = [&state](std::uint64_t m) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::size_t>((state >> 33) % m);
  };

  for (int trial = 0; trial < 64; ++trial) {
    const rank_t n = static_cast<rank_t>(2 + rnd(6));
    std::vector<QuiescenceRank> ranks;
    for (rank_t r = 0; r < n; ++r) ranks.emplace_back(r, n);

    std::vector<rank_t> in_flight;  // destination of each undelivered msg
    std::size_t budget = 1 + rnd(40);  // sends the "computation" may make
    for (std::size_t i = 0; i < 1 + rnd(4); ++i) {
      const rank_t from = static_cast<rank_t>(rnd(n));
      ranks[from].on_send(1);
      in_flight.push_back(static_cast<rank_t>(rnd(n)));
    }

    bool token_in_flight = false;
    rank_t token_dest = 0;
    QuiescenceToken token;
    bool terminated = false;

    for (int step = 0; step < 200000 && !terminated; ++step) {
      const bool deliver = !in_flight.empty() && rnd(2) == 0;
      if (deliver) {
        // Out-of-order delivery: pick any in-flight message.
        const std::size_t i = rnd(in_flight.size());
        const rank_t dest = in_flight[i];
        in_flight[i] = in_flight.back();
        in_flight.pop_back();
        ranks[dest].on_receive(1);
        if (budget > 0 && rnd(3) == 0) {  // receipt may trigger more sends
          --budget;
          ranks[dest].on_send(1);
          in_flight.push_back(static_cast<rank_t>(rnd(n)));
        }
        continue;
      }
      if (token_in_flight && rnd(2) == 0) {
        ranks[token_dest].receive_token(token);
        token_in_flight = false;
      }
      const rank_t r = static_cast<rank_t>(rnd(n));
      const Action a = ranks[r].poll(true);
      if (a.kind == Kind::kForward) {
        token = a.token;
        token_dest = a.dest;
        token_in_flight = true;
      } else if (a.kind == Kind::kTerminate) {
        // Soundness: certification with messages in flight is a bug.
        EXPECT_TRUE(in_flight.empty())
            << "trial " << trial << ": certified with " << in_flight.size()
            << " message(s) in flight";
        terminated = true;
      }
    }
    EXPECT_TRUE(terminated) << "trial " << trial << " never terminated";
  }
}

}  // namespace
}  // namespace parsssp
