// Distributed construction (kernel 1) must be byte-equivalent to the
// global-CSR slicing path, and usable by the solver end to end.
#include <gtest/gtest.h>

#include "core/dist_builder.hpp"
#include "core/solver.hpp"
#include "graph/graph_algos.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

void expect_views_equal(const LocalEdgeView& a, const LocalEdgeView& b) {
  ASSERT_EQ(a.num_local(), b.num_local());
  for (vid_t v = 0; v < a.num_local(); ++v) {
    EXPECT_EQ(a.degree(v), b.degree(v)) << "v=" << v;
    EXPECT_EQ(a.short_degree(v), b.short_degree(v)) << "v=" << v;
    const auto sa = a.short_arcs(v);
    const auto sb = b.short_arcs(v);
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()))
        << "short arcs differ at v=" << v;
    const auto la = a.long_arcs(v);
    const auto lb = b.long_arcs(v);
    EXPECT_TRUE(std::equal(la.begin(), la.end(), lb.begin(), lb.end()))
        << "long arcs differ at v=" << v;
  }
  EXPECT_EQ(a.total_long_degree(), b.total_long_degree());
}

TEST(DistBuilder, EquivalentToGlobalSlicing) {
  RmatConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 8;
  const EdgeList edges = generate_rmat(cfg);
  const CsrGraph g = CsrGraph::from_edges(edges);

  for (const rank_t ranks : {1u, 3u, 8u}) {
    Machine machine({.num_ranks = ranks});
    const BlockPartition part(g.num_vertices(), ranks);
    const auto distributed =
        build_views_distributed(edges, machine, part, 25);
    const auto sliced = build_all_views(g, part, 25);
    ASSERT_EQ(distributed.size(), sliced.size());
    for (rank_t r = 0; r < ranks; ++r) {
      SCOPED_TRACE("rank " + std::to_string(r) + " of " +
                   std::to_string(ranks));
      expect_views_equal(distributed[r], sliced[r]);
    }
  }
}

TEST(DistBuilder, SelfLoopsSingleArc) {
  EdgeList edges;
  edges.add_edge(0, 0, 5);
  edges.add_edge(0, 1, 3);
  Machine machine({.num_ranks = 2});
  const BlockPartition part(edges.num_vertices(), 2);
  const auto views = build_views_distributed(edges, machine, part, 10);
  // Vertex 0: self loop contributes one arc (like the CSR builder).
  EXPECT_EQ(views[0].degree(0), 2u);
}

TEST(DistBuilder, ScatterTrafficCounted) {
  RmatConfig cfg;
  cfg.scale = 8;
  const EdgeList edges = generate_rmat(cfg);
  Machine machine({.num_ranks = 4});
  const BlockPartition part(edges.num_vertices(), 4);
  build_views_distributed(edges, machine, part, 25);
  // Most arcs cross rank boundaries under a scattered R-MAT.
  EXPECT_GT(machine.traffic().merged().total_messages(), edges.num_edges());
}

TEST(DistBuilder, ViewsUsableByEngineViaHistogram) {
  // End-to-end sanity: the from_arcs views carry everything the estimators
  // need (sorted long arcs, histograms).
  RmatConfig cfg;
  cfg.scale = 8;
  const EdgeList edges = generate_rmat(cfg);
  const CsrGraph g = CsrGraph::from_edges(edges);
  Machine machine({.num_ranks = 2});
  const BlockPartition part(g.num_vertices(), 2);
  const auto views = build_views_distributed(edges, machine, part, 25);
  for (rank_t r = 0; r < 2; ++r) {
    for (vid_t v = 0; v < views[r].num_local(); ++v) {
      const auto exact = views[r].count_long_below(v, 128);
      const auto approx = views[r].count_long_below_histogram(v, 128);
      EXPECT_NEAR(static_cast<double>(exact), approx,
                  std::max<double>(2.0, 0.5 * views[r].long_degree(v)));
    }
  }
}

TEST(DistBuilder, EmptyEdgeList) {
  EdgeList edges(10);
  Machine machine({.num_ranks = 3});
  const BlockPartition part(10, 3);
  const auto views = build_views_distributed(edges, machine, part, 25);
  for (const auto& view : views) {
    for (vid_t v = 0; v < view.num_local(); ++v) {
      EXPECT_EQ(view.degree(v), 0u);
    }
  }
}

}  // namespace
}  // namespace parsssp
