#include "core/dist_graph.hpp"

#include <gtest/gtest.h>

#include "graph/rmat.hpp"

namespace parsssp {
namespace {

CsrGraph mixed_weights() {
  EdgeList list;
  list.add_edge(0, 1, 3);    // short for delta=10
  list.add_edge(0, 2, 10);   // long
  list.add_edge(0, 3, 50);   // long
  list.add_edge(1, 2, 9);    // short
  list.add_edge(2, 3, 25);   // long
  return CsrGraph::from_edges(list);
}

TEST(LocalEdgeView, SplitsShortAndLong) {
  const auto g = mixed_weights();
  const BlockPartition part(g.num_vertices(), 1);
  const auto view = LocalEdgeView::build(g, part, 0, 10);
  EXPECT_EQ(view.num_local(), 4u);
  EXPECT_EQ(view.short_degree(0), 1u);
  EXPECT_EQ(view.long_degree(0), 2u);
  EXPECT_EQ(view.degree(0), 3u);
  for (const Arc& a : view.short_arcs(0)) EXPECT_LT(a.w, 10u);
  for (const Arc& a : view.long_arcs(0)) EXPECT_GE(a.w, 10u);
}

TEST(LocalEdgeView, LongArcsSortedByWeight) {
  const auto g = mixed_weights();
  const BlockPartition part(g.num_vertices(), 1);
  const auto view = LocalEdgeView::build(g, part, 0, 5);
  for (vid_t v = 0; v < view.num_local(); ++v) {
    const auto arcs = view.long_arcs(v);
    for (std::size_t i = 1; i < arcs.size(); ++i) {
      EXPECT_LE(arcs[i - 1].w, arcs[i].w);
    }
  }
}

TEST(LocalEdgeView, AllArcsCoversDegree) {
  const auto g = mixed_weights();
  const BlockPartition part(g.num_vertices(), 2);
  for (rank_t r = 0; r < 2; ++r) {
    const auto view = LocalEdgeView::build(g, part, r, 10);
    for (vid_t local = 0; local < view.num_local(); ++local) {
      const vid_t global = part.global_id(r, local);
      EXPECT_EQ(view.all_arcs(local).size(), g.degree(global));
    }
  }
}

TEST(LocalEdgeView, CountLongBelowExact) {
  const auto g = mixed_weights();
  const BlockPartition part(g.num_vertices(), 1);
  const auto view = LocalEdgeView::build(g, part, 0, 10);
  // Vertex 0 long arcs: weights {10, 50}.
  EXPECT_EQ(view.count_long_below(0, 10), 0u);
  EXPECT_EQ(view.count_long_below(0, 11), 1u);
  EXPECT_EQ(view.count_long_below(0, 50), 1u);
  EXPECT_EQ(view.count_long_below(0, 51), 2u);
  EXPECT_EQ(view.count_long_below(0, kInfDist), 2u);
}

TEST(LocalEdgeView, CountLongBelowHugeBound) {
  const auto g = mixed_weights();
  const BlockPartition part(g.num_vertices(), 1);
  const auto view = LocalEdgeView::build(g, part, 0, 10);
  // A bound beyond weight_t's range counts every long arc.
  const dist_t huge = static_cast<dist_t>(1) << 40;
  EXPECT_EQ(view.count_long_below(0, huge), 2u);
}

TEST(LocalEdgeView, DeltaInfAllShort) {
  const auto g = mixed_weights();
  const BlockPartition part(g.num_vertices(), 1);
  const auto view =
      LocalEdgeView::build(g, part, 0, 0xffffffffu);
  for (vid_t v = 0; v < view.num_local(); ++v) {
    EXPECT_EQ(view.long_degree(v), 0u);
  }
  EXPECT_EQ(view.total_long_degree(), 0u);
}

TEST(LocalEdgeView, DeltaOneAllLong) {
  const auto g = mixed_weights();
  const BlockPartition part(g.num_vertices(), 1);
  const auto view = LocalEdgeView::build(g, part, 0, 1);
  for (vid_t v = 0; v < view.num_local(); ++v) {
    EXPECT_EQ(view.short_degree(v), 0u);
  }
}

TEST(LocalEdgeView, TotalLongDegree) {
  const auto g = mixed_weights();
  const BlockPartition part(g.num_vertices(), 1);
  const auto view = LocalEdgeView::build(g, part, 0, 10);
  // Long undirected edges: (0,2,10), (0,3,50), (2,3,25) -> 6 arc endpoints.
  EXPECT_EQ(view.total_long_degree(), 6u);
}

TEST(LocalEdgeView, BuildAllViewsPartitionConsistency) {
  RmatConfig cfg;
  cfg.scale = 8;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  const BlockPartition part(g.num_vertices(), 4);
  const auto views = build_all_views(g, part, 25);
  ASSERT_EQ(views.size(), 4u);
  std::uint64_t total_arcs = 0;
  for (rank_t r = 0; r < 4; ++r) {
    for (vid_t local = 0; local < views[r].num_local(); ++local) {
      total_arcs += views[r].degree(local);
    }
  }
  EXPECT_EQ(total_arcs, g.num_arcs());
}

}  // namespace
}  // namespace parsssp
