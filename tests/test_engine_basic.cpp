#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "core/validate.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

CsrGraph small_weighted() {
  EdgeList list;
  list.add_edge(0, 1, 2);
  list.add_edge(1, 2, 2);
  list.add_edge(2, 3, 5);
  list.add_edge(0, 3, 9);
  list.add_edge(3, 4, 1);
  return CsrGraph::from_edges(list);
}

TEST(EngineBasic, SingleRankMatchesOracle) {
  const auto g = small_weighted();
  Solver solver(g, {.machine = {.num_ranks = 1}});
  const auto r = solver.solve(0, SsspOptions::del(5));
  EXPECT_EQ(r.dist, dijkstra_distances(g, 0));
}

TEST(EngineBasic, MultiRankMatchesOracle) {
  const auto g = small_weighted();
  for (const rank_t ranks : {2u, 3u, 5u}) {
    Solver solver(g, {.machine = {.num_ranks = ranks}});
    const auto r = solver.solve(0, SsspOptions::del(5));
    EXPECT_EQ(r.dist, dijkstra_distances(g, 0)) << "ranks=" << ranks;
  }
}

TEST(EngineBasic, EveryRootMatchesOracle) {
  const auto g = small_weighted();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  for (vid_t root = 0; root < g.num_vertices(); ++root) {
    const auto r = solver.solve(root, SsspOptions::del(5));
    EXPECT_EQ(r.dist, dijkstra_distances(g, root)) << "root=" << root;
  }
}

TEST(EngineBasic, SingleVertexGraph) {
  EdgeList list(1);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::del(5));
  EXPECT_EQ(r.dist, (std::vector<dist_t>{0}));
}

TEST(EngineBasic, TwoVertexGraph) {
  EdgeList list;
  list.add_edge(0, 1, 7);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 4}});  // more ranks than vertices
  const auto r = solver.solve(1, SsspOptions::del(5));
  EXPECT_EQ(r.dist, (std::vector<dist_t>{7, 0}));
}

TEST(EngineBasic, DisconnectedComponentsStayInf) {
  EdgeList list(6);
  list.add_edge(0, 1, 3);
  list.add_edge(3, 4, 2);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 3}});
  const auto r = solver.solve(0, SsspOptions::opt(5));
  EXPECT_EQ(r.dist[1], 3u);
  EXPECT_EQ(r.dist[3], kInfDist);
  EXPECT_EQ(r.dist[4], kInfDist);
  EXPECT_EQ(r.dist[5], kInfDist);
}

TEST(EngineBasic, SelfLoopIgnoredInDistances) {
  EdgeList list;
  list.add_edge(0, 0, 5);
  list.add_edge(0, 1, 3);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::del(10));
  EXPECT_EQ(r.dist, (std::vector<dist_t>{0, 3}));
}

TEST(EngineBasic, MultiEdgeTakesSmallestWeight) {
  EdgeList list;
  list.add_edge(0, 1, 9);
  list.add_edge(0, 1, 4);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 1}});
  const auto r = solver.solve(0, SsspOptions::del(5));
  EXPECT_EQ(r.dist[1], 4u);
}

TEST(EngineBasic, ZeroWeightProxyEdges) {
  EdgeList list;
  list.add_edge(0, 1, 0);
  list.add_edge(1, 2, 6);
  list.add_edge(2, 3, 0);
  const auto g = CsrGraph::from_edges(list);
  for (const rank_t ranks : {1u, 2u, 4u}) {
    Solver solver(g, {.machine = {.num_ranks = ranks}});
    const auto r = solver.solve(0, SsspOptions::opt(5));
    EXPECT_EQ(r.dist, (std::vector<dist_t>{0, 0, 6, 6})) << ranks;
  }
}

TEST(EngineBasic, RootOutOfRangeThrows) {
  const auto g = small_weighted();
  Solver solver(g, {.machine = {.num_ranks = 1}});
  EXPECT_THROW(solver.solve(99, SsspOptions::del(5)), std::out_of_range);
}

TEST(EngineBasic, ZeroDeltaThrows) {
  const auto g = small_weighted();
  Solver solver(g, {.machine = {.num_ranks = 1}});
  SsspOptions o = SsspOptions::del(5);
  o.delta = 0;
  EXPECT_THROW(solver.solve(0, o), std::invalid_argument);
}

TEST(EngineBasic, RepeatedSolvesIndependent) {
  const auto g = small_weighted();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto a = solver.solve(0, SsspOptions::del(5));
  const auto b = solver.solve(4, SsspOptions::del(5));
  const auto c = solver.solve(0, SsspOptions::del(5));
  EXPECT_EQ(a.dist, c.dist);
  EXPECT_EQ(b.dist, dijkstra_distances(g, 4));
}

TEST(EngineBasic, DeltaChangeRebuildsViews) {
  const auto g = small_weighted();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto a = solver.solve(0, SsspOptions::del(2));
  const auto b = solver.solve(0, SsspOptions::del(100));
  EXPECT_EQ(a.dist, b.dist);
}

TEST(EngineBasic, InvariantsHoldOnSmallGraph) {
  const auto g = small_weighted();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const auto r = solver.solve(0, SsspOptions::opt(5));
  const auto report = check_sssp_invariants(g, 0, r.dist);
  EXPECT_TRUE(report.ok) << report.message;
}

}  // namespace
}  // namespace parsssp
