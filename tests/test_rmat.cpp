#include "graph/rmat.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"

namespace parsssp {
namespace {

TEST(Rmat, EdgeAndVertexCountsMatchConfig) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 16;
  const EdgeList list = generate_rmat(cfg);
  EXPECT_EQ(list.num_vertices(), 1u << 8);
  EXPECT_EQ(list.num_edges(), 16u << 8);
}

TEST(Rmat, DeterministicForSameSeed) {
  RmatConfig cfg;
  cfg.scale = 7;
  cfg.seed = 123;
  const EdgeList a = generate_rmat(cfg);
  const EdgeList b = generate_rmat(cfg);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Rmat, DifferentSeedsDiffer) {
  RmatConfig cfg;
  cfg.scale = 7;
  cfg.seed = 1;
  const EdgeList a = generate_rmat(cfg);
  cfg.seed = 2;
  const EdgeList b = generate_rmat(cfg);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(Rmat, EndpointsWithinRange) {
  RmatConfig cfg;
  cfg.scale = 9;
  const EdgeList list = generate_rmat(cfg);
  const vid_t n = vid_t{1} << 9;
  for (const auto& e : list.edges()) {
    EXPECT_LT(e.u, n);
    EXPECT_LT(e.v, n);
  }
}

TEST(Rmat, WeightsWithinRange) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.min_weight = 1;
  cfg.max_weight = 255;
  const EdgeList list = generate_rmat(cfg);
  for (const auto& e : list.edges()) {
    EXPECT_GE(e.w, 1u);
    EXPECT_LE(e.w, 255u);
  }
}

TEST(Rmat, WeightsUseFullRangeApproximately) {
  RmatConfig cfg;
  cfg.scale = 10;
  const EdgeList list = generate_rmat(cfg);
  std::set<weight_t> seen;
  for (const auto& e : list.edges()) seen.insert(e.w);
  // 16k draws from [1,255] should hit most values.
  EXPECT_GT(seen.size(), 200u);
}

TEST(Rmat, Rmat1MoreSkewedThanRmat2) {
  // Fig 8 of the paper: RMAT-1's maximum degree dwarfs RMAT-2's at equal
  // scale. The effect is visible already at small scale.
  RmatConfig cfg1;
  cfg1.params = RmatParams::rmat1();
  cfg1.scale = 12;
  RmatConfig cfg2 = cfg1;
  cfg2.params = RmatParams::rmat2();
  const auto g1 = CsrGraph::from_edges(generate_rmat(cfg1));
  const auto g2 = CsrGraph::from_edges(generate_rmat(cfg2));
  EXPECT_GT(max_degree(g1), 2 * max_degree(g2));
}

TEST(Rmat, MaxDegreeGrowsWithScale) {
  std::size_t prev = 0;
  for (std::uint32_t scale : {9u, 11u, 13u}) {
    RmatConfig cfg;
    cfg.params = RmatParams::rmat1();
    cfg.scale = scale;
    const auto g = CsrGraph::from_edges(generate_rmat(cfg));
    const std::size_t d = max_degree(g);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Rmat, PermutationPreservesDegreeMultiset) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.permute_labels = false;
  const auto plain = CsrGraph::from_edges(generate_rmat(cfg));
  cfg.permute_labels = true;
  const auto permuted = CsrGraph::from_edges(generate_rmat(cfg));
  std::multiset<std::size_t> a, b;
  for (vid_t v = 0; v < plain.num_vertices(); ++v) a.insert(plain.degree(v));
  for (vid_t v = 0; v < permuted.num_vertices(); ++v) {
    b.insert(permuted.degree(v));
  }
  EXPECT_EQ(a, b);
}

TEST(Rmat, UnpermutedRmatConcentratesLowIds) {
  // Without the label permutation, the R-MAT bit-fixing process biases
  // heavy vertices toward low ids (quadrant A). Sanity-check the generator
  // produces that classic artifact, which the permutation then destroys.
  RmatConfig cfg;
  cfg.params = RmatParams::rmat1();
  cfg.scale = 10;
  cfg.permute_labels = false;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));
  std::uint64_t low_half = 0;
  std::uint64_t total = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    total += g.degree(v);
    if (v < g.num_vertices() / 2) low_half += g.degree(v);
  }
  EXPECT_GT(low_half, (total * 6) / 10);
}

TEST(RmatHash, DeterministicAndSpread) {
  EXPECT_EQ(rmat_hash(1, 2), rmat_hash(1, 2));
  EXPECT_NE(rmat_hash(1, 2), rmat_hash(1, 3));
  EXPECT_NE(rmat_hash(1, 2), rmat_hash(2, 2));
}

}  // namespace
}  // namespace parsssp
