#include "core/lb_thresholds.hpp"

#include <gtest/gtest.h>

#include "core/split_solver.hpp"
#include "core/solver.hpp"
#include "graph/builders.hpp"
#include "graph/rmat.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

TEST(LbThresholds, UniformGraphNeedsNoSplitting) {
  // 4-regular-ish grid: no extreme vertices.
  const auto g = CsrGraph::from_edges(make_grid(32));
  const auto t = suggest_lb_thresholds(g, {.num_ranks = 8});
  EXPECT_FALSE(t.splitting_recommended);
  EXPECT_GE(t.split_pi, t.heavy_pi);
}

TEST(LbThresholds, ExtremeHubTriggersSplitting) {
  // One vertex holding almost every edge, spread over many ranks.
  const auto g = CsrGraph::from_edges(make_star(4096));
  const auto t = suggest_lb_thresholds(g, {.num_ranks = 16});
  EXPECT_TRUE(t.splitting_recommended);
  EXPECT_EQ(t.max_degree, 4096u);
}

TEST(LbThresholds, MoreLanesLowerHeavyThreshold) {
  const auto g = CsrGraph::from_edges(generate_rmat({.scale = 10}));
  const auto one = suggest_lb_thresholds(g, {.num_ranks = 4,
                                             .lanes_per_rank = 1});
  const auto four = suggest_lb_thresholds(g, {.num_ranks = 4,
                                              .lanes_per_rank = 4});
  EXPECT_GE(one.heavy_pi, four.heavy_pi);
}

TEST(LbThresholds, MoreRanksLowerSplitThreshold) {
  const auto g = CsrGraph::from_edges(generate_rmat({.scale = 10}));
  const auto small = suggest_lb_thresholds(g, {.num_ranks = 2});
  const auto big = suggest_lb_thresholds(g, {.num_ranks = 32});
  EXPECT_GT(small.split_pi, big.split_pi);
}

TEST(LbThresholds, FloorOnTinyGraphs) {
  const auto g = CsrGraph::from_edges(make_path(4));
  const auto t = suggest_lb_thresholds(g, {.num_ranks = 64});
  EXPECT_GE(t.heavy_pi, 16u);  // never split trivial vertices across lanes
}

TEST(LbThresholds, EndToEndWithSuggestedThresholds) {
  // Use the suggested pi for intra-rank LB and pi' for splitting; the
  // solve must stay exact.
  RmatConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 8;
  const EdgeList list = generate_rmat(cfg);
  const CsrGraph g = CsrGraph::from_edges(list);
  const MachineConfig machine{.num_ranks = 8, .lanes_per_rank = 2};
  const auto t = suggest_lb_thresholds(g, machine);

  SsspOptions options = SsspOptions::opt(25);
  options.heavy_degree_threshold = t.heavy_pi;

  const vid_t root = 5;
  const auto expected = dijkstra_distances(g, root);
  if (t.splitting_recommended) {
    SplitSolver solver(list, {.solver = {.machine = machine},
                              .degree_threshold = t.split_pi});
    EXPECT_EQ(solver.solve(root, options).dist, expected);
  } else {
    Solver solver(g, {.machine = machine});
    EXPECT_EQ(solver.solve(root, options).dist, expected);
  }
}

}  // namespace
}  // namespace parsssp
