// Concurrency stress for the serving stack, written for the TSan lane of
// scripts/check.sh (and required to pass without it): concurrent
// submit/cancel against one MachineSession and one QueryEngine, plus
// destruction with work still queued. Completed answers must be exact;
// cancelled queries must fail with JobCancelled and nothing else.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "graph/rmat.hpp"
#include "runtime/machine_session.hpp"
#include "seq/dijkstra.hpp"
#include "serve/query_engine.hpp"
#include "update/dynamic_graph.hpp"

namespace parsssp {
namespace {

using namespace std::chrono_literals;

TEST(ServeRaces, ConcurrentSubmitToOneSession) {
  MachineConfig config;
  config.num_ranks = 3;
  config.checked_exchange = true;
  MachineSession session(config);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 16;
  std::atomic<std::uint64_t> observed{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&session, &observed, &futures, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        futures[t].push_back(session.submit([&observed](RankCtx& ctx) {
          const auto sum = ctx.allreduce(std::uint64_t{1}, SumOp{});
          if (ctx.rank() == 0) observed.fetch_add(sum);
        }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) f.get();
  }
  EXPECT_EQ(observed.load(), std::uint64_t{kThreads} * kJobsPerThread * 3);
  EXPECT_EQ(session.jobs_completed(), std::size_t{kThreads} * kJobsPerThread);
}

TEST(ServeRaces, ConcurrentSubmitAndCancelOnOneSession) {
  MachineConfig config;
  config.num_ranks = 2;
  config.checked_exchange = true;
  MachineSession session(config);

  std::atomic<bool> stop{false};
  std::thread canceller([&session, &stop] {
    while (!stop.load()) {
      session.cancel_pending();
      std::this_thread::yield();
    }
  });

  int completed = 0;
  int cancelled = 0;
  for (int j = 0; j < 64; ++j) {
    auto f = session.submit([](RankCtx& ctx) { ctx.barrier(); });
    try {
      f.get();
      ++completed;
    } catch (const JobCancelled&) {
      ++cancelled;
    }
  }
  stop.store(true);
  canceller.join();
  EXPECT_EQ(completed + cancelled, 64);
  EXPECT_EQ(session.jobs_completed(), static_cast<std::size_t>(completed));
}

TEST(ServeRaces, ConcurrentClientsGetExactAnswers) {
  RmatConfig cfg;
  cfg.scale = 7;
  cfg.edge_factor = 8;
  cfg.seed = 3;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));

  ServeConfig config;
  config.machine.num_ranks = 3;
  config.machine.checked_exchange = true;
  config.max_batch = 4;
  config.batch_window = 100us;
  config.cache_capacity = 16;
  QueryEngine engine(g, config);
  const SsspOptions options = SsspOptions::opt(25);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const vid_t root = static_cast<vid_t>((t * 13 + q * 7) %
                                              g.num_vertices());
        const QueryResult r = engine.query(root, options);
        if (r.answer->dist != dijkstra_distances(g, root)) {
          failures[t] = "wrong answer for root " + std::to_string(root);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, std::uint64_t{kThreads} * kQueriesPerThread);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(ServeRaces, ConcurrentSubmitAndCancelOnEngine) {
  RmatConfig cfg;
  cfg.scale = 7;
  cfg.edge_factor = 8;
  cfg.seed = 5;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));

  ServeConfig config;
  config.machine.num_ranks = 2;
  config.machine.checked_exchange = true;
  config.max_batch = 4;
  config.batch_window = 200us;
  config.cache_capacity = 0;  // every query must hit the machine
  QueryEngine engine(g, config);
  const SsspOptions options = SsspOptions::del(25);

  std::atomic<bool> stop{false};
  std::thread canceller([&engine, &stop] {
    while (!stop.load()) {
      engine.cancel_pending();
      std::this_thread::yield();
    }
  });

  constexpr int kThreads = 3;
  constexpr int kQueriesPerThread = 12;
  std::atomic<int> completed{0};
  std::atomic<int> cancelled{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const vid_t root = static_cast<vid_t>((t * 31 + q * 5) %
                                              g.num_vertices());
        try {
          const QueryResult r = engine.query(root, options);
          if (r.answer->dist == dijkstra_distances(g, root)) {
            completed.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
        } catch (const JobCancelled&) {
          cancelled.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  canceller.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(completed.load() + cancelled.load(),
            kThreads * kQueriesPerThread);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(completed.load()));
  EXPECT_EQ(stats.cancelled, static_cast<std::uint64_t>(cancelled.load()));
}

TEST(ServeRaces, ConcurrentQueriesAndUpdatesOnDynamicEngine) {
  // TSan target for the dynamic-serving path in its default MVCC mode:
  // client threads querying (each batch pinned to a snapshot) while
  // another thread streams edge-update batches through the builder thread,
  // which publishes new versions concurrently with serving. The update
  // sequence is pre-generated against a host-side mirror, so every batch
  // is valid when the builder (the only graph mutator) applies it in
  // order. Snapshot-layer churn with forced compactions lives in
  // test_snapshot.cpp; the fenced (FIFO) mode is covered by
  // test_update_serving.cpp.
  RmatConfig cfg;
  cfg.scale = 7;
  cfg.edge_factor = 8;
  cfg.seed = 13;
  DynamicGraph graph(strip_self_loops(CsrGraph::from_edges(generate_rmat(cfg))));
  const vid_t n = graph.num_vertices();

  constexpr int kUpdates = 12;
  std::vector<EdgeBatch> updates;
  {
    // Mirror tracks cumulative effect; only weights change or fresh pairs
    // appear, so batches stay valid in sequence.
    DynamicGraph mirror(graph.base());
    for (int i = 0; i < kUpdates; ++i) {
      EdgeBatch batch;
      const vid_t u = static_cast<vid_t>((i * 37 + 5) % n);
      const std::vector<Arc> arcs = mirror.arcs_of(u);
      if (!arcs.empty()) {
        batch.update_weight(u, arcs.front().to,
                            static_cast<weight_t>(1 + i % 9));
      }
      vid_t v = (u + 1) % n;
      while (v == u || mirror.has_edge(u, v)) v = (v + 1) % n;
      batch.insert_edge(u, v, static_cast<weight_t>(2 + i % 7));
      mirror.apply(batch);
      updates.push_back(std::move(batch));
    }
  }

  ServeConfig config;
  config.machine.num_ranks = 3;
  config.machine.checked_exchange = true;
  config.max_batch = 4;
  config.batch_window = 100us;
  config.cache_capacity = 16;
  QueryEngine engine(graph, config);
  const SsspOptions options = SsspOptions::del(25);

  std::atomic<int> wrong{0};
  std::thread updater([&] {
    for (const EdgeBatch& batch : updates) {
      const UpdateResult r = engine.update(batch);
      if (r.version == 0) wrong.fetch_add(1);
    }
  });
  constexpr int kThreads = 3;
  constexpr int kQueriesPerThread = 10;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const vid_t root = static_cast<vid_t>((t * 29 + q * 11) % n);
        const QueryResult r = engine.query(root, options);
        // The graph version is a moving target mid-stream; check the
        // invariants that hold at every version.
        if (r.answer == nullptr || r.answer->dist.size() != n ||
            r.answer->dist[root] != 0) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  updater.join();
  for (auto& t : clients) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(engine.graph_version(), static_cast<std::uint64_t>(kUpdates));

  // Quiescent now: a fresh query must match the final graph exactly, and
  // nothing stale may be served for it.
  const CsrGraph final_graph = graph.materialize();
  for (const vid_t root : {vid_t{0}, vid_t{9}}) {
    const QueryResult r = engine.query(root, options);
    EXPECT_EQ(r.answer->dist, dijkstra_distances(final_graph, root));
  }
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.updates, static_cast<std::uint64_t>(kUpdates));
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(ServeRaces, DestructionWithInFlightClients) {
  RmatConfig cfg;
  cfg.scale = 7;
  cfg.edge_factor = 8;
  cfg.seed = 9;
  const auto g = CsrGraph::from_edges(generate_rmat(cfg));

  ServeConfig config;
  config.machine.num_ranks = 2;
  config.max_batch = 8;
  config.batch_window = 50ms;  // long window: queries pile up in the queue
  QueryEngine* engine = new QueryEngine(g, config);
  std::vector<std::future<QueryResult>> futures;
  for (vid_t root = 0; root < 16; ++root) {
    futures.push_back(engine->submit(root, SsspOptions::del(25)));
  }
  delete engine;  // must fail or finish every queued query, never hang
  int resolved = 0;
  for (auto& f : futures) {
    try {
      if (f.get().answer != nullptr) ++resolved;
    } catch (const JobCancelled&) {
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, 16);
}

}  // namespace
}  // namespace parsssp
