// The asynchronous SSSP engine (core/async_engine.hpp, docs/ASYNC.md).
// Contract under test: distances bit-identical to the bucket-synchronous
// OPT engine across graph families x Delta x rank counts x data paths,
// canonical parents matching, exactly one global synchronization per solve
// (the final stats allreduce), and the serve-layer cold-query routing.
// Plus unit tests of the lazy-batched bucket queue the engine runs on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "core/lazy_pq.hpp"
#include "core/options.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "graph/builders.hpp"
#include "graph/rmat.hpp"
#include "obs/metrics.hpp"
#include "serve/query_engine.hpp"

namespace parsssp {
namespace {

// --- LazyBucketQueue ------------------------------------------------------

using Entry = std::pair<vid_t, dist_t>;

TEST(LazyBucketQueue, EmptyQueuePopsInfBucket) {
  LazyBucketQueue q(4);
  EXPECT_TRUE(q.empty());
  std::vector<Entry> out = {{1, 1}};
  EXPECT_EQ(q.pop_batch(out), kInfBucket);
  EXPECT_TRUE(out.empty());  // pop clears even when there is nothing
}

TEST(LazyBucketQueue, PopsTheLowestNonEmptyBucketWhole) {
  LazyBucketQueue q(4);
  q.push(1, 7);    // bucket 1
  q.push(2, 100);  // bucket 25
  q.push(3, 0);    // bucket 0
  q.push(4, 5);    // bucket 1
  EXPECT_EQ(q.size(), 4u);

  std::vector<Entry> out;
  EXPECT_EQ(q.pop_batch(out), 0u);
  EXPECT_EQ(out, (std::vector<Entry>{{3, 0}}));
  EXPECT_EQ(q.pop_batch(out), 1u);
  EXPECT_EQ(out, (std::vector<Entry>{{1, 7}, {4, 5}}));  // push order kept
  EXPECT_EQ(q.pop_batch(out), 25u);
  EXPECT_EQ(out, (std::vector<Entry>{{2, 100}}));
  EXPECT_TRUE(q.empty());
}

TEST(LazyBucketQueue, LowerPushAfterPopRewindsTheCursor) {
  LazyBucketQueue q(4);
  q.push(1, 40);
  std::vector<Entry> out;
  EXPECT_EQ(q.pop_batch(out), 10u);
  // A speculative relaxation improved some vertex below the popped level:
  // the cursor must come back down for it.
  q.push(2, 3);
  EXPECT_EQ(q.pop_batch(out), 0u);
  EXPECT_EQ(out, (std::vector<Entry>{{2, 3}}));
}

TEST(LazyBucketQueue, LazyDeletionKeepsBothEntries) {
  // An improvement does not remove the stale entry; it queues a second,
  // lower one. The engine filters staleness against its distance array;
  // the queue just surfaces both in bucket order.
  LazyBucketQueue q(4);
  q.push(7, 10);  // bucket 2: will become stale
  q.push(7, 3);   // bucket 0: the improvement
  EXPECT_EQ(q.size(), 2u);
  std::vector<Entry> out;
  EXPECT_EQ(q.pop_batch(out), 0u);
  EXPECT_EQ(out, (std::vector<Entry>{{7, 3}}));
  EXPECT_EQ(q.pop_batch(out), 2u);
  EXPECT_EQ(out, (std::vector<Entry>{{7, 10}}));
}

TEST(LazyBucketQueue, InfDeltaDegeneratesToASingleBucket) {
  LazyBucketQueue q(SsspOptions::kInfDelta);
  q.push(1, 0);
  q.push(2, 1000000);
  q.push(3, 42);
  std::vector<Entry> out;
  EXPECT_EQ(q.pop_batch(out), 0u);
  EXPECT_EQ(out.size(), 3u);  // the whole frontier is one batch
  EXPECT_TRUE(q.empty());
}

// --- Bit-identity with the bucket-synchronous OPT engine ------------------

CsrGraph rmat_graph() {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  cfg.seed = 3;
  return CsrGraph::from_edges(generate_rmat(cfg));
}

using Param = std::tuple<std::uint32_t /*delta*/, rank_t, DataPath>;

class AsyncEngineProperty : public ::testing::TestWithParam<Param> {};

TEST_P(AsyncEngineProperty, DistancesAndParentsBitIdenticalToOpt) {
  const auto [delta, ranks, path] = GetParam();
  const std::vector<CsrGraph> graphs = {rmat_graph(),
                                        CsrGraph::from_edges(make_grid(12))};
  for (const CsrGraph& g : graphs) {
    Solver solver(g, {.machine = {.num_ranks = ranks}});
    for (const vid_t root : {vid_t{0}, vid_t{g.num_vertices() / 2}}) {
      SsspOptions sync = SsspOptions::opt(delta);
      sync.data_path = path;
      sync.track_parents = true;
      sync.canonical_parents = true;
      SsspOptions async = SsspOptions::async_opt(delta);
      async.data_path = path;
      async.track_parents = true;

      const SsspResult want = solver.solve(root, sync);
      const SsspResult got = solver.solve(root, async);
      ASSERT_EQ(got.dist, want.dist)
          << "delta=" << delta << " ranks=" << ranks
          << " path=" << static_cast<int>(path) << " root=" << root;
      // Canonical parents are a pure function of graph + dist, so
      // bit-identical distances force bit-identical trees.
      ASSERT_EQ(got.parent, want.parent);
      // And both are right, not merely consistent with each other.
      EXPECT_TRUE(validate_against_dijkstra(g, root, got.dist).ok);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncEngineProperty,
    ::testing::Combine(::testing::Values(4u, 25u, SsspOptions::kInfDelta),
                       ::testing::Values(rank_t{1}, rank_t{3}, rank_t{4},
                                         rank_t{8}),
                       ::testing::Values(DataPath::kPooled,
                                         DataPath::kReference)),
    [](const ::testing::TestParamInfo<Param>& tpi) {
      const auto delta = std::get<0>(tpi.param);
      return std::string("delta") +
             (delta == SsspOptions::kInfDelta ? "inf"
                                              : std::to_string(delta)) +
             "_ranks" + std::to_string(std::get<1>(tpi.param)) +
             (std::get<2>(tpi.param) == DataPath::kPooled ? "_pooled"
                                                          : "_reference");
    });

// --- Synchronization accounting -------------------------------------------

TEST(AsyncEngine, ExactlyOneGlobalSyncPerSolve) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const SsspResult r = solver.solve(0, SsspOptions::async_opt(25));
  // The one collective is the final stats allreduce; the data plane is
  // barrier-free.
  EXPECT_EQ(r.stats.sync_allreduces, 1u);
  EXPECT_EQ(r.stats.sync_barriers, 0u);
  EXPECT_EQ(r.stats.global_syncs(), 1u);
  EXPECT_GT(r.stats.async_relaxations, 0u);
  EXPECT_GT(r.stats.quiescence_rounds, 0u);
  EXPECT_GT(r.stats.token_hops, 0u);
}

TEST(AsyncEngine, AtLeastTenTimesFewerSyncsThanOpt) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 4}});
  const SsspResult sync = solver.solve(0, SsspOptions::opt(25));
  const SsspResult async = solver.solve(0, SsspOptions::async_opt(25));
  EXPECT_GE(sync.stats.global_syncs(), 10 * async.stats.global_syncs())
      << "opt=" << sync.stats.global_syncs()
      << " async=" << async.stats.global_syncs();
}

TEST(AsyncEngine, SingleRankRunsAreReproducible) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 1}});
  const SsspResult a = solver.solve(5, SsspOptions::async_opt(25));
  const SsspResult b = solver.solve(5, SsspOptions::async_opt(25));
  EXPECT_EQ(a.dist, b.dist);
  // One rank, one schedule: even the speculative work count is stable.
  EXPECT_EQ(a.stats.async_relaxations, b.stats.async_relaxations);
}

TEST(AsyncEngine, SolveMultiRejectsTheAsyncEngine) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 2}});
  const std::vector<vid_t> roots = {0, 1};
  EXPECT_THROW(solver.solve_multi(roots, SsspOptions::async_opt(25)),
               std::invalid_argument);
}

// --- Serve-layer routing ---------------------------------------------------

TEST(AsyncEngine, ExplicitAsyncQueriesServeBitIdenticalAnswers) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 3}});
  ServeConfig config;
  config.machine.num_ranks = 3;
  QueryEngine engine(g, config);

  const SsspOptions options = SsspOptions::async_opt(25);
  const QueryResult first = engine.query(17, options);
  ASSERT_NE(first.answer, nullptr);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(first.answer->dist, solver.solve(17, options).dist);
  EXPECT_EQ(first.answer->stats.global_syncs(), 1u);
  // The options signature includes the algorithm, so the async answer is
  // its own cache entry — and a hit the second time around.
  EXPECT_TRUE(engine.query(17, options).from_cache);
}

TEST(AsyncEngine, ColdQueryConfigFlagRoutesCacheMissesBarrierFree) {
  const auto g = rmat_graph();
  Solver solver(g, {.machine = {.num_ranks = 3}});
  MetricsRegistry metrics;
  ServeConfig config;
  config.machine.num_ranks = 3;
  config.async_cold_queries = true;
  config.metrics = &metrics;
  QueryEngine engine(g, config);

  // The client asks for plain OPT; the engine may serve the cold miss
  // barrier-free because the answer is bit-identical.
  const SsspOptions options = SsspOptions::opt(25);
  const QueryResult r = engine.query(21, options);
  EXPECT_EQ(r.answer->dist, solver.solve(21, options).dist);

  const auto barriers_of = [&metrics]() -> std::uint64_t {
    for (const auto& c : metrics.snapshot().counters) {
      if (c.name == "sssp.barriers") return c.value;
    }
    return 0;
  };
  // sssp.barriers counts the solve's global syncs: exactly one for the
  // async path. A cache hit adds nothing.
  EXPECT_EQ(barriers_of(), 1u);
  EXPECT_TRUE(engine.query(21, options).from_cache);
  EXPECT_EQ(barriers_of(), 1u);

  // Non-canonical parent queries are exempt from the rerouting (raw trees
  // are engine-specific): the synchronous path shows up as a barrier burst.
  SsspOptions parents = SsspOptions::opt(25);
  parents.track_parents = true;
  const QueryResult p = engine.query(21, parents);
  EXPECT_EQ(p.answer->dist, solver.solve(21, options).dist);
  EXPECT_GT(barriers_of(), 2u);
}

}  // namespace
}  // namespace parsssp
