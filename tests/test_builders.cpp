#include "graph/builders.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/graph_algos.hpp"
#include "seq/dijkstra.hpp"

namespace parsssp {
namespace {

TEST(Builders, Path) {
  const auto g = CsrGraph::from_edges(make_path(5, 3));
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_undirected_edges(), 4u);
  EXPECT_EQ(dijkstra_distances(g, 0)[4], 12u);
}

TEST(Builders, SingleVertexPath) {
  const auto g = CsrGraph::from_edges(make_path(1));
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_undirected_edges(), 0u);
}

TEST(Builders, Cycle) {
  const auto g = CsrGraph::from_edges(make_cycle(6, 2));
  EXPECT_EQ(g.num_undirected_edges(), 6u);
  // Opposite vertex: 3 hops either way.
  EXPECT_EQ(dijkstra_distances(g, 0)[3], 6u);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Builders, Star) {
  const auto g = CsrGraph::from_edges(make_star(7, 4));
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.degree(0), 7u);
  EXPECT_EQ(dijkstra_distances(g, 1)[2], 8u);  // leaf -> hub -> leaf
}

TEST(Builders, CliqueDefaultWeights) {
  const auto g = CsrGraph::from_edges(make_clique(6));
  EXPECT_EQ(g.num_undirected_edges(), 15u);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Builders, CliqueCustomWeights) {
  const auto list = make_clique(4, [](vid_t u, vid_t v) {
    return static_cast<weight_t>(u + v);
  });
  const auto g = CsrGraph::from_edges(list);
  // Edge (1,2) has weight 3.
  bool found = false;
  for (const Arc& a : g.neighbors(1)) {
    if (a.to == 2) {
      EXPECT_EQ(a.w, 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Builders, Grid) {
  const auto g = CsrGraph::from_edges(make_grid(4));
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_undirected_edges(), 2u * 4 * 3);
  // Manhattan distance with unit weights.
  EXPECT_EQ(dijkstra_distances(g, 0)[15], 6u);
  EXPECT_EQ(bfs_depth(g, 0), 6u);
}

TEST(Builders, BinaryTree) {
  const auto g = CsrGraph::from_edges(make_binary_tree(15));
  EXPECT_EQ(g.num_undirected_edges(), 14u);
  EXPECT_EQ(bfs_depth(g, 0), 3u);
  const Components c = connected_components(g);
  EXPECT_EQ(c.num_components, 1u);
}

TEST(Builders, Fig6Example) {
  const auto list = make_fig6_example();
  const auto g = CsrGraph::from_edges(list);
  EXPECT_EQ(g.num_vertices(), 11u);
  // 5 root spokes + 10 clique edges + 5 tails = 20 edges.
  EXPECT_EQ(g.num_undirected_edges(), 20u);
  const auto d = dijkstra_distances(g, 0);
  for (vid_t c = 1; c <= 5; ++c) EXPECT_EQ(d[c], 10u);    // clique: B_2
  for (vid_t t = 6; t <= 10; ++t) EXPECT_EQ(d[t], 20u);   // tails: B_4
}

TEST(Builders, Fig6Parameterized) {
  const auto g = CsrGraph::from_edges(make_fig6_example(3, 2, 8));
  EXPECT_EQ(g.num_vertices(), 7u);
  const auto d = dijkstra_distances(g, 0);
  EXPECT_EQ(d[1], 8u);
  EXPECT_EQ(d[4], 16u);
}

}  // namespace
}  // namespace parsssp
