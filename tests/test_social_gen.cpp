#include "graph/social_gen.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"
#include "graph/graph_algos.hpp"

namespace parsssp {
namespace {

TEST(SocialGen, AllKindsGenerate) {
  for (const auto kind : all_social_graph_kinds()) {
    SocialGraphSpec spec;
    spec.kind = kind;
    spec.scale_down_log2 = 12;
    const EdgeList list = generate_social_graph(spec);
    EXPECT_GT(list.num_edges(), 0u) << social_graph_info(spec).name;
    EXPECT_GE(list.num_vertices(), 1u << 12);
  }
}

TEST(SocialGen, SimpleGraph) {
  SocialGraphSpec spec;
  spec.kind = SocialGraphKind::kOrkut;
  spec.scale_down_log2 = 12;
  EdgeList list = generate_social_graph(spec);
  const std::size_t before = list.num_edges();
  list.dedup_and_strip_self_loops();
  EXPECT_EQ(list.num_edges(), before) << "generator must emit a simple graph";
}

TEST(SocialGen, Deterministic) {
  SocialGraphSpec spec;
  spec.scale_down_log2 = 12;
  const EdgeList a = generate_social_graph(spec);
  const EdgeList b = generate_social_graph(spec);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(SocialGen, InfoCarriesPaperNumbers) {
  SocialGraphSpec spec;
  spec.kind = SocialGraphKind::kFriendster;
  const SocialGraphInfo info = social_graph_info(spec);
  EXPECT_EQ(info.name, "Friendster");
  EXPECT_DOUBLE_EQ(info.paper_gteps_del40, 1.8);
  EXPECT_DOUBLE_EQ(info.paper_gteps_opt40, 4.3);
}

TEST(SocialGen, SkewedDegreeDistribution) {
  SocialGraphSpec spec;
  spec.kind = SocialGraphKind::kOrkut;
  spec.scale_down_log2 = 10;
  const auto g = CsrGraph::from_edges(generate_social_graph(spec));
  const DegreeStats s = compute_degree_stats(g);
  // Social graphs: heavy tail — the max degree dwarfs the mean.
  EXPECT_GT(static_cast<double>(s.max_degree), 20.0 * s.mean_degree);
}

TEST(SocialGen, GiantComponentExists) {
  SocialGraphSpec spec;
  spec.kind = SocialGraphKind::kLiveJournal;
  spec.scale_down_log2 = 10;
  const auto g = CsrGraph::from_edges(generate_social_graph(spec));
  const Components c = connected_components(g);
  EXPECT_GT(c.giant_size, g.num_vertices() / 4);
}

TEST(SocialGen, ScaleDownShrinksGraph) {
  SocialGraphSpec big;
  big.kind = SocialGraphKind::kOrkut;
  big.scale_down_log2 = 8;
  SocialGraphSpec small = big;
  small.scale_down_log2 = 10;
  EXPECT_GT(social_graph_info(big).num_vertices,
            social_graph_info(small).num_vertices);
}

}  // namespace
}  // namespace parsssp
