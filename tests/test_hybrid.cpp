#include "core/hybrid.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

TEST(Hybrid, SwitchesAboveThreshold) {
  EXPECT_TRUE(should_switch_to_bellman_ford(41, 100, 0.4));
  EXPECT_FALSE(should_switch_to_bellman_ford(40, 100, 0.4));  // strict >
  EXPECT_FALSE(should_switch_to_bellman_ford(10, 100, 0.4));
}

TEST(Hybrid, NegativeTauDisables) {
  EXPECT_FALSE(should_switch_to_bellman_ford(100, 100, -1.0));
}

TEST(Hybrid, TauZeroSwitchesImmediately) {
  EXPECT_TRUE(should_switch_to_bellman_ford(1, 100, 0.0));
  EXPECT_FALSE(should_switch_to_bellman_ford(0, 100, 0.0));
}

TEST(Hybrid, EmptyGraphNeverSwitches) {
  EXPECT_FALSE(should_switch_to_bellman_ford(0, 0, 0.4));
}

TEST(Hybrid, TauOneRequiresEveryone) {
  EXPECT_FALSE(should_switch_to_bellman_ford(100, 100, 1.0));
}

}  // namespace
}  // namespace parsssp
