#include "graph/weights.hpp"

#include <gtest/gtest.h>

namespace parsssp {
namespace {

EdgeList path(std::size_t edges) {
  EdgeList list;
  for (vid_t i = 0; i < edges; ++i) list.add_edge(i, i + 1, 999);
  return list;
}

TEST(Weights, OverwritesAllWeightsWithinRange) {
  EdgeList list = path(200);
  WeightConfig cfg;
  cfg.min_weight = 5;
  cfg.max_weight = 10;
  assign_uniform_weights(list, cfg);
  for (const auto& e : list.edges()) {
    EXPECT_GE(e.w, 5u);
    EXPECT_LE(e.w, 10u);
  }
}

TEST(Weights, DeterministicInSeed) {
  EdgeList a = path(50);
  EdgeList b = path(50);
  assign_uniform_weights(a, {1, 255, 7});
  assign_uniform_weights(b, {1, 255, 7});
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Weights, SeedChangesAssignment) {
  EdgeList a = path(50);
  EdgeList b = path(50);
  assign_uniform_weights(a, {1, 255, 7});
  assign_uniform_weights(b, {1, 255, 8});
  EXPECT_NE(a.edges(), b.edges());
}

TEST(Weights, SingleValueRange) {
  EdgeList list = path(10);
  assign_uniform_weights(list, {3, 3, 1});
  for (const auto& e : list.edges()) EXPECT_EQ(e.w, 3u);
}

}  // namespace
}  // namespace parsssp
