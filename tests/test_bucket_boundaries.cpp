// Bucket-boundary edge cases: distances landing exactly on k*Delta and
// (k+1)*Delta - 1, IOS filters at the limit, and weights equal to Delta
// (the short/long frontier). These are the off-by-one hot spots of any
// Delta-stepping implementation.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "graph/builders.hpp"
#include "seq/dijkstra.hpp"
#include "parsssp.hpp"

namespace parsssp {
namespace {

TEST(BucketBoundaries, DistanceExactlyAtBucketStart) {
  // Path with weight exactly Delta: every vertex lands on a bucket start.
  const auto g = CsrGraph::from_edges(make_path(20, 10));
  Solver solver(g, {.machine = {.num_ranks = 3}});
  for (const auto& o : {SsspOptions::del(10), SsspOptions::prune(10),
                        SsspOptions::opt(10)}) {
    const auto r = solver.solve(0, o);
    EXPECT_EQ(r.dist, dijkstra_distances(g, 0));
  }
}

TEST(BucketBoundaries, DistanceExactlyAtBucketEnd) {
  // Weight Delta-1: distances hit (k+1)*Delta - 1 exactly, the inclusive
  // end the IOS filter compares against.
  const auto g = CsrGraph::from_edges(make_path(20, 9));
  Solver solver(g, {.machine = {.num_ranks = 3}});
  SsspOptions o = SsspOptions::prune(10);
  ASSERT_TRUE(o.ios);
  const auto r = solver.solve(0, o);
  EXPECT_EQ(r.dist, dijkstra_distances(g, 0));
}

TEST(BucketBoundaries, WeightEqualToDeltaIsLong) {
  EdgeList list;
  list.add_edge(0, 1, 10);
  const auto g = CsrGraph::from_edges(list);
  const BlockPartition part(2, 1);
  const auto view = LocalEdgeView::build(g, part, 0, 10);
  EXPECT_EQ(view.short_degree(0), 0u);
  EXPECT_EQ(view.long_degree(0), 1u);
}

TEST(BucketBoundaries, WeightJustBelowDeltaIsShort) {
  EdgeList list;
  list.add_edge(0, 1, 9);
  const auto g = CsrGraph::from_edges(list);
  const BlockPartition part(2, 1);
  const auto view = LocalEdgeView::build(g, part, 0, 10);
  EXPECT_EQ(view.short_degree(0), 1u);
}

TEST(BucketBoundaries, MixedBoundaryWeights) {
  // Weights Delta-1, Delta, Delta+1 racing to the same targets.
  EdgeList list;
  list.add_edge(0, 1, 9);
  list.add_edge(0, 2, 10);
  list.add_edge(0, 3, 11);
  list.add_edge(1, 4, 10);
  list.add_edge(2, 4, 9);
  list.add_edge(3, 4, 8);
  const auto g = CsrGraph::from_edges(list);
  Solver solver(g, {.machine = {.num_ranks = 2}});
  for (const auto mode : {PruneMode::kPushOnly, PruneMode::kPullOnly}) {
    SsspOptions o = SsspOptions::prune(10);
    o.prune_mode = mode;
    EXPECT_EQ(solver.solve(0, o).dist, dijkstra_distances(g, 0));
  }
}

TEST(BucketBoundaries, PullRequestConditionStrictness) {
  // Equation (1): request iff w(e) < d(v) - k*Delta. Build a case where
  // w(e) == d(v) - k*Delta exactly: the request is useless and the exact
  // estimator must not count it.
  EdgeList list;
  list.add_edge(0, 1, 10);   // d(1) = 10
  list.add_edge(1, 2, 10);   // d(2) = 20
  list.add_edge(0, 2, 20);   // alternative: weight exactly d(2) - 0*Delta
  const auto g = CsrGraph::from_edges(list);
  const BlockPartition part(3, 1);
  const auto view = LocalEdgeView::build(g, part, 0, 10);
  // Vertex 2 with d(2)=20 in bucket 2, current bucket k=0: bound = 20.
  // Arcs of 2: weights {10, 20}; only 10 < 20 qualifies.
  EXPECT_EQ(view.count_long_below(2, 20), 1u);
  // And the full solve stays exact under pull.
  Solver solver(g, {.machine = {.num_ranks = 3}});
  SsspOptions o = SsspOptions::prune(10);
  o.prune_mode = PruneMode::kPullOnly;
  EXPECT_EQ(solver.solve(0, o).dist, dijkstra_distances(g, 0));
}

TEST(BucketBoundaries, MaxWeightEdges) {
  // All weights at the benchmark maximum (255) with Delta choices around
  // it: 255 (w == Delta -> long), 256 (w < Delta -> short).
  const auto g = CsrGraph::from_edges(make_cycle(12, 255));
  Solver solver(g, {.machine = {.num_ranks = 2}});
  for (const std::uint32_t delta : {255u, 256u}) {
    EXPECT_EQ(solver.solve(0, SsspOptions::prune(delta)).dist,
              dijkstra_distances(g, 0))
        << delta;
  }
}

TEST(BucketBoundaries, UmbrellaHeaderCompiles) {
  // parsssp.hpp is included above; spot-check a symbol from each layer.
  EXPECT_EQ(bucket_of(25, 10), 2u);
  EXPECT_GE(TorusTopology::balanced(8).capacity(), 8u);
  EXPECT_EQ(SsspOptions::opt(25).delta, 25u);
}

}  // namespace
}  // namespace parsssp
